#include "ksr/nas/bt.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "ksr/sync/barrier.hpp"

namespace ksr::nas {

namespace {

constexpr std::size_t kComp = 5;  // components per grid point

/// Layout: rhs and u, each n^3 points x 5 doubles, point-major (the five
/// components of a point are contiguous: one point = 40 bytes, so three
/// points and a bit share a 128 B sub-page).
struct BtGrid {
  mem::SharedArray<double> mem;
  std::size_t n = 0;
  std::size_t array_stride = 0;

  [[nodiscard]] std::size_t idx(unsigned arr, std::size_t x, std::size_t y,
                                std::size_t z, std::size_t c) const noexcept {
    return arr * array_stride + (((z * n + y) * n + x) * kComp) + c;
  }
};

enum : unsigned { kU = 0, kRhs = 1 };

using Vec5 = std::array<double, 5>;

[[nodiscard]] Vec5 read_vec(machine::Cpu& cpu, BtGrid& g, unsigned arr,
                            std::size_t x, std::size_t y, std::size_t z) {
  Vec5 v;
  for (std::size_t c = 0; c < kComp; ++c) {
    v[c] = cpu.read(g.mem, g.idx(arr, x, y, z, c));
  }
  return v;
}

void write_vec(machine::Cpu& cpu, BtGrid& g, unsigned arr, std::size_t x,
               std::size_t y, std::size_t z, const Vec5& v) {
  for (std::size_t c = 0; c < kComp; ++c) {
    cpu.write(g.mem, g.idx(arr, x, y, z, c), v[c]);
  }
}

/// A deterministic, diagonally dominant 5x5 "block" derived from the local
/// state — standing in for the Jacobian blocks NAS BT assembles on the fly.
/// Applying it is the real data movement; the O(5^3) block arithmetic is
/// charged as work.
[[nodiscard]] Vec5 apply_block(const Vec5& coeff_src, const Vec5& v,
                               double scale) {
  Vec5 out;
  for (std::size_t r = 0; r < kComp; ++r) {
    double acc = 0.8 * v[r];  // dominant diagonal
    for (std::size_t c = 0; c < kComp; ++c) {
      if (c != r) {
        acc += scale * 0.01 * coeff_src[(r + c) % kComp] * v[c];
      }
    }
    out[r] = acc;
  }
  return out;
}

/// Block-tridiagonal line solve along direction `d` at line coordinates
/// (c1, c2): block forward elimination then back-substitution. Each step
/// reads the 5-vectors of the point and its neighbours, applies 5x5 block
/// operations (charged as work), and writes the updated 5-vector.
void solve_block_line(machine::Cpu& cpu, BtGrid& g, unsigned d,
                      std::size_t c1, std::size_t c2, std::uint64_t work) {
  const std::size_t n = g.n;
  auto coord = [&](std::size_t i, std::size_t& x, std::size_t& y,
                   std::size_t& z) {
    switch (d) {
      case 0: x = i, y = c1, z = c2; break;
      case 1: x = c1, y = i, z = c2; break;
      default: x = c1, y = c2, z = i; break;
    }
  };
  // Forward elimination.
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t x, y, z, xp, yp, zp;
    coord(i, x, y, z);
    coord(i - 1, xp, yp, zp);
    const Vec5 u_here = read_vec(cpu, g, kU, x, y, z);
    const Vec5 r_prev = read_vec(cpu, g, kRhs, xp, yp, zp);
    Vec5 r_here = read_vec(cpu, g, kRhs, x, y, z);
    const Vec5 sub = apply_block(u_here, r_prev, 1.0);
    for (std::size_t c = 0; c < kComp; ++c) r_here[c] -= 0.3 * sub[c];
    write_vec(cpu, g, kRhs, x, y, z, r_here);
    cpu.work(work);  // block LU + triangular solves: ~5^3 flops
  }
  // Back substitution + solution update.
  for (std::size_t ii = n - 1; ii-- > 0;) {
    std::size_t x, y, z, xn, yn, zn;
    coord(ii, x, y, z);
    coord(ii + 1, xn, yn, zn);
    const Vec5 u_here = read_vec(cpu, g, kU, x, y, z);
    const Vec5 r_next = read_vec(cpu, g, kRhs, xn, yn, zn);
    Vec5 r_here = read_vec(cpu, g, kRhs, x, y, z);
    const Vec5 sub = apply_block(u_here, r_next, -1.0);
    for (std::size_t c = 0; c < kComp; ++c) r_here[c] -= 0.2 * sub[c];
    write_vec(cpu, g, kRhs, x, y, z, r_here);
    Vec5 u_new = u_here;
    for (std::size_t c = 0; c < kComp; ++c) u_new[c] += 0.1 * r_here[c];
    write_vec(cpu, g, kU, x, y, z, u_new);
    cpu.work(work);
  }
}

}  // namespace

BtResult run_bt(machine::Machine& m, const BtConfig& cfg) {
  const std::size_t n = cfg.n;
  const std::size_t points = n * n * n;
  const unsigned nproc = m.nproc();

  BtGrid g;
  g.n = n;
  g.array_stride = points * kComp;
  g.mem = m.alloc<double>("bt.grid", 2 * g.array_stride);

  for (std::size_t z = 0; z < n; ++z) {
    for (std::size_t y = 0; y < n; ++y) {
      for (std::size_t x = 0; x < n; ++x) {
        for (std::size_t c = 0; c < kComp; ++c) {
          const double v =
              std::cos(0.07 * static_cast<double>(x + 3 * y + 2 * z + c));
          g.mem.set_value(g.idx(kU, x, y, z, c), v);
          g.mem.set_value(g.idx(kRhs, x, y, z, c), 0.4 * v);
        }
      }
    }
  }

  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  BtResult out;
  double t_max = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t z_lo = n * me / nproc;
    const std::size_t z_hi = n * (me + 1) / nproc;
    const std::size_t y_lo = n * me / nproc;
    const std::size_t y_hi = n * (me + 1) / nproc;

    // Warm-up: own my z-slab.
    for (unsigned arr = 0; arr < 2; ++arr) {
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        cpu.read_range(g.mem.addr(g.idx(arr, 0, 0, z, 0)),
                       n * n * kComp * sizeof(double));
      }
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    for (unsigned it = 0; it < cfg.iterations; ++it) {
      // Phase X and Y on the z-slab; phase Z repartitions by y.
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
          solve_block_line(cpu, g, 0, y, z, cfg.work_per_block_op);
        }
      }
      barrier->arrive(cpu);
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        for (std::size_t x = 0; x < n; ++x) {
          solve_block_line(cpu, g, 1, x, z, cfg.work_per_block_op);
        }
      }
      barrier->arrive(cpu);
      if (cfg.use_prefetch) {
        const unsigned depth = m.config().prefetch_depth;
        unsigned issued = 0;
        for (std::size_t y = y_lo; y < y_hi; ++y) {
          for (std::size_t z = 0; z < n; ++z) {
            const mem::Sva a0 = g.mem.addr(g.idx(kRhs, 0, y, z, 0));
            const mem::Sva a1 = g.mem.addr(g.idx(kRhs, 0, y, z, 0) +
                                           n * kComp);
            for (mem::Sva a = a0; a < a1; a += mem::kSubPageBytes) {
              cpu.prefetch(a, /*exclusive=*/true);
              if (++issued % depth == 0) cpu.work(190);
            }
          }
        }
      }
      for (std::size_t y = y_lo; y < y_hi; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          solve_block_line(cpu, g, 2, x, y, cfg.work_per_block_op);
        }
      }
      barrier->arrive(cpu);
    }

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.total_seconds = t_max;
  out.seconds_per_iteration = t_max / cfg.iterations;
  double checksum = 0;
  for (std::size_t i = 0; i < g.array_stride; ++i) {
    checksum += g.mem.value(g.idx(kU, 0, 0, 0, 0) + i);
  }
  out.checksum = checksum;
  return out;
}

}  // namespace ksr::nas
