#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <utility>
#include <vector>

#include "ksr/obs/tracer.hpp"

// Trace exporters.
//
// Chrome trace-event JSON (the format Perfetto and chrome://tracing load):
// each simulation becomes a *process* track (pid = the order it was added,
// i.e. SweepRunner submission order), each cell/actor a *thread* track, and
// paired events (barrier-arrive/-depart, lock-acquire/-release) become
// duration ('B'/'E') slices; everything else is an instant event. Timestamps
// are simulated nanoseconds rendered as microseconds with integer math, so
// the output is byte-stable across hosts and runs — the property the
// exporter golden test pins down.
//
// Normalization: records mix two clocks (ring/coherence use the global
// engine clock; sync/stall use the logging cpu's local clock, which runs
// ahead), so each thread track is emitted sorted by timestamp — monotone
// per track, which is what Perfetto needs for well-formed slices. Each
// process also carries a "process_labels" metadata event with its
// "events=N dropped=M" accounting, mirroring the CSV footer.
namespace ksr::obs {

/// Streaming multi-process writer: construct on an open stream, add_process()
/// once per simulation *in submission order*, then finish() (or let the
/// destructor do it). Processes stream out as they are added, so merged
/// sweep traces never hold more than one job's records.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Per-cell topology annotation for multi-leaf machines: index = cell id.
  struct CellTopo {
    unsigned leaf = 0;
    unsigned domain = 0;
  };

  /// Emit every retained record of `t` as one process track named
  /// `process_name`. Returns the pid assigned.
  int add_process(const Tracer& t, std::string_view process_name);

  /// Same, with leaf-ring grouping: a cell track whose actor id indexes
  /// `cells` is named "cell N (leaf L, dom D)" and sorted by leaf ring, so
  /// Perfetto shows one contiguous band per leaf instead of a flat
  /// 1088-track list.
  int add_process(const Tracer& t, std::string_view process_name,
                  const std::vector<CellTopo>& cells);

  /// Write the closing bracket. Idempotent.
  void finish();

 private:
  void event_prefix();
  int add_process_impl(const Tracer& t, std::string_view process_name,
                       const std::vector<CellTopo>* cells);

  std::ostream& os_;
  int next_pid_ = 0;
  bool any_event_ = false;
  bool finished_ = false;
};

/// One-shot convenience: a complete JSON document for a single tracer.
void write_chrome_trace(const Tracer& t, std::ostream& os,
                        std::string_view process_name = "sim");

}  // namespace ksr::obs
