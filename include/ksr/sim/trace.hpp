#pragma once

#include "ksr/obs/tracer.hpp"

// Compatibility shim: structured tracing moved into the observability layer
// (ksr/obs/tracer.hpp) when it grew interned ids, drop accounting, category
// masks and exporters. Machine-facing code keeps saying sim::Tracer.
namespace ksr::sim {

using Tracer = obs::Tracer;

}  // namespace ksr::sim
