# Empty compiler generated dependencies file for bench_table4_sp_opt.
# This may be replaced when dependencies are built.
