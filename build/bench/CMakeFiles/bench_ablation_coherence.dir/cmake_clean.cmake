file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_coherence.dir/bench_ablation_coherence.cpp.o"
  "CMakeFiles/bench_ablation_coherence.dir/bench_ablation_coherence.cpp.o.d"
  "bench_ablation_coherence"
  "bench_ablation_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
