# Empty compiler generated dependencies file for barrier_playground.
# This may be replaced when dependencies are built.
