#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

// Host-side parallel experiment runner.
//
// The paper's experiment suite is a sweep of *independent* simulations:
// every table/figure loops over processor counts, lock/barrier variants and
// machine configs, and each iteration builds its own Machine (engine, heap,
// caches, RNGs) from scratch. SweepRunner shards those iterations across
// host cores while keeping the output bit-identical to the serial run.
//
// Determinism contract:
//   * A job is self-contained: it constructs everything it touches (its own
//     Machine + workload) and returns a plain result value. Nothing in the
//     simulator is process-global (no static RNGs, counters or tracer
//     singletons — audited and kept that way by test_host_runner), so two
//     machines may run on two host threads without sharing a byte.
//   * Each job writes only its own result slot; the caller reads the slots
//     in submission order after the batch completes. Host scheduling can
//     reorder *execution* freely but never *observation*, so tables, CSV
//     output and events_dispatched fingerprints are byte-identical for any
//     --jobs value (enforced by scripts/bench_host.sh --check).
//   * jobs() == 1 runs every job inline on the calling thread — the exact
//     serial execution, with no pool threads created at all.
//
// Error contract: with jobs() == 1 an exception aborts the sweep at the
// failing job (classic serial semantics). With a pool, every job still runs,
// then the exception of the earliest-submitted failing job is rethrown — the
// same exception surfaces either way.
namespace ksr::host {

class SweepRunner {
 public:
  /// `jobs` == 0 picks default_jobs(). The pool threads (when jobs > 1) are
  /// created here and live until destruction; batches reuse them.
  explicit SweepRunner(unsigned jobs = 0);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Host worker count this runner shards over (>= 1).
  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  [[nodiscard]] static unsigned default_jobs() noexcept {
    const unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
  }

  /// Execute `task(0) .. task(count-1)`, sharded over the pool. Returns when
  /// all indices finished; rethrows per the error contract above. `task`
  /// must be safe to invoke concurrently from several threads on distinct
  /// indices (each index writing only its own output slot).
  void run_indexed(std::size_t count,
                   const std::function<void(std::size_t)>& task);

  /// Run a vector of result-returning jobs; results come back in submission
  /// order regardless of execution interleaving.
  template <typename R>
  std::vector<R> run(const std::vector<std::function<R()>>& tasks) {
    static_assert(!std::is_same_v<R, bool>,
                  "std::vector<bool> packs results into shared words; "
                  "concurrent per-index writes would race. Use char/int.");
    std::vector<R> out(tasks.size());
    run_indexed(tasks.size(),
                [&](std::size_t i) { out[i] = tasks[i](); });
    return out;
  }

 private:
  void worker_loop();

  unsigned jobs_;
  std::vector<std::thread> threads_;

  std::mutex mu_;
  std::condition_variable cv_work_;  // workers wait here for a new batch
  std::condition_variable cv_done_;  // the submitter waits here

  // Current batch, published under mu_ by bumping batch_. Workers claim
  // indices lock-free through next_, then bump exited_ under mu_ once they
  // leave the claim loop; run_indexed waits for exited_ == jobs_ before
  // resetting any of this state, so a late-waking worker can never observe
  // task_/count_/next_ from a different batch. Each errors_ slot is written
  // by at most the one worker that claimed that index, and read by the
  // submitter only after the batch completes.
  const std::function<void(std::size_t)>* task_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t exited_ = 0;  // workers that observed and left the batch
  std::uint64_t batch_ = 0;
  bool stop_ = false;
  std::vector<std::exception_ptr> errors_;
};

}  // namespace ksr::host
