# Empty compiler generated dependencies file for ring_trace.
# This may be replaced when dependencies are built.
