// Reproduces Fig. 4 ("Performance of the barriers on 32-node KSR-1"):
// mean barrier episode time for the nine algorithms, P = 2..32.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  HostMetrics host("fig4_barriers_ksr1");
  const int episodes = opt.quick ? 5 : 20;
  print_header("Barrier performance on the 32-node KSR-1",
               "Fig. 4, Section 3.2.2");

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{4, 16, 32}
                : std::vector<unsigned>{2, 4, 8, 12, 16, 20, 24, 28, 32};

  std::vector<std::string> headers{"barrier \\ procs"};
  for (unsigned p : procs) headers.push_back(std::to_string(p));
  TextTable t(headers);

  double counter32 = 0, tournament_m32 = 0;
  for (sync::BarrierKind kind : sync::all_barrier_kinds()) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (unsigned p : procs) {
      machine::KsrMachine m(machine::MachineConfig::ksr1(p));
      const double s = barrier_episode_seconds(m, kind, episodes);
      host.add(m);
      if (p == 32 && kind == sync::BarrierKind::kCounter) counter32 = s;
      if (p == 32 && kind == sync::BarrierKind::kTournamentM) {
        tournament_m32 = s;
      }
      row.push_back(TextTable::num(s * 1e6, 1));  // microseconds
    }
    t.add_row(row);
  }

  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\n(all entries in microseconds per barrier episode)\n"
              << "\nPaper expectations (Fig. 4): counter worst and growing"
                 " steeply;\ntree > dissemination > tournament ~ MCS; the"
                 " global-wakeup-flag (M)\nvariants much flatter, with"
                 " tournament(M) best overall.\n";
    if (counter32 > 0 && tournament_m32 > 0) {
      std::cout << "Measured at P=32: counter/tournament(M) ratio = "
                << TextTable::num(counter32 / tournament_m32, 1) << "x\n";
    }
  }
  return 0;
}
