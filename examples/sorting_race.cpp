// Sorting race: run the paper's 7-phase parallel Integer Sort (Fig. 9) at
// several processor counts, verify the ranking each time, and print the
// speedup curve — a compact end-to-end tour of the NAS IS kernel.
//
//   $ ./sorting_race [log2_keys] [log2_buckets]
#include <cstdio>
#include <string>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/is.hpp"
#include "ksr/study/metrics.hpp"

int main(int argc, char** argv) {
  using namespace ksr;  // NOLINT

  nas::IsConfig cfg;
  cfg.log2_keys =
      argc > 1 ? static_cast<unsigned>(std::stoul(argv[1])) : 14u;
  cfg.log2_buckets =
      argc > 2 ? static_cast<unsigned>(std::stoul(argv[2])) : 9u;

  std::printf("Parallel bucket sort of 2^%u keys into 2^%u buckets\n",
              cfg.log2_keys, cfg.log2_buckets);
  std::printf("(the seven phases of the paper's Fig. 9)\n\n");
  std::printf("%8s %12s %9s %12s %8s\n", "procs", "time (s)", "speedup",
              "serial ph4", "sorted?");

  std::vector<std::pair<unsigned, double>> measured;
  for (unsigned p : {1u, 2u, 4u, 8u, 16u, 32u}) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(64));
    const nas::IsResult r = run_is(m, cfg);
    measured.emplace_back(p, r.seconds);
    const double s = measured.front().second / r.seconds;
    std::printf("%8u %12.5f %9.2f %12.6f %8s\n", p, r.seconds, s,
                r.serial_phase_seconds, r.ranks_valid ? "yes" : "NO!");
  }

  std::printf("\nKarp-Flatt serial fraction (growing => algorithmic serial\n"
              "sections + ring load, the paper's Table 2 diagnosis):\n");
  for (const auto& row : study::scaling_rows(measured)) {
    if (row.p == 1) continue;
    std::printf("  p=%2u  f=%.6f\n", row.p, row.serial_fraction);
  }
  return 0;
}
