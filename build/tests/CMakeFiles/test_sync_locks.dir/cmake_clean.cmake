file(REMOVE_RECURSE
  "CMakeFiles/test_sync_locks.dir/test_sync_locks.cpp.o"
  "CMakeFiles/test_sync_locks.dir/test_sync_locks.cpp.o.d"
  "test_sync_locks"
  "test_sync_locks.pdb"
  "test_sync_locks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_locks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
