#pragma once

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "ksr/mem/geometry.hpp"

// The simulated machine's data heap.
//
// The timing model (caches, ring) only reasons about addresses; actual data
// values live here so that programs running on the simulator compute real
// results (the sort sorts, CG converges). Allocation is bump-pointer and
// page-aligned: distinct regions never share a sub-page, so there is no
// accidental false sharing between unrelated data structures — exactly the
// "aligned on separate cache lines" discipline the paper describes, with
// intentional false sharing still expressible inside one region.
namespace ksr::mem {

/// One allocated SVA range with its backing bytes.
struct Region {
  Sva base = 0;
  std::size_t bytes = 0;
  std::string name;
  std::unique_ptr<std::byte[]> data;
};

class Heap {
 public:
  /// Start allocating above page 1 so address 0 stays invalid.
  Heap() = default;

  Heap(const Heap&) = delete;
  Heap& operator=(const Heap&) = delete;

  /// Allocate `bytes` (rounded up to a whole number of pages), zero-filled.
  /// Returns a stable reference to the region record.
  const Region& alloc(std::size_t bytes, std::string_view name) {
    const std::size_t rounded = ((bytes + kPageBytes - 1) / kPageBytes) * kPageBytes;
    auto region = std::make_unique<Region>();
    region->base = next_;
    region->bytes = rounded;
    region->name = std::string(name);
    region->data = std::make_unique<std::byte[]>(rounded);
    std::memset(region->data.get(), 0, rounded);
    next_ += rounded;
    regions_.push_back(std::move(region));
    return *regions_.back();
  }

  [[nodiscard]] std::size_t region_count() const noexcept { return regions_.size(); }
  [[nodiscard]] std::size_t bytes_allocated() const noexcept { return next_ - kPageBytes; }

  /// Region record by allocation order, for diagnostics and trace reports.
  [[nodiscard]] const Region& region(std::size_t i) const {
    return *regions_.at(i);
  }

  /// Region containing `a`. Throws if unmapped. Bump allocation keeps
  /// regions_ sorted by base, so the lookup is a binary search — the trace
  /// analyzer resolves a region per record, where a linear scan degraded
  /// quadratically on region-heavy workloads (BT/LU).
  [[nodiscard]] const Region& region_of(Sva a) const {
    const auto it = std::upper_bound(
        regions_.begin(), regions_.end(), a,
        [](Sva v, const std::unique_ptr<Region>& r) { return v < r->base; });
    if (it != regions_.begin()) {
      const Region& r = **std::prev(it);
      if (a >= r.base && a < r.base + r.bytes) return r;
    }
    throw std::out_of_range("Heap::region_of: unmapped SVA " + std::to_string(a));
  }

 private:
  Sva next_ = kPageBytes;
  std::vector<std::unique_ptr<Region>> regions_;
};

/// Typed view over a heap region. Trivially copyable handle; elements are
/// accessed *functionally* here (value/set_value) — all *timing* goes through
/// the Cpu API, which charges the cache/ring model and then touches values
/// through this view.
template <typename T>
class SharedArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "SharedArray elements must be trivially copyable");

 public:
  SharedArray() = default;
  SharedArray(const Region& region, std::size_t count)
      : base_(region.base), count_(count), data_(region.data.get()) {
    if (count * sizeof(T) > region.bytes) {
      throw std::length_error("SharedArray: region too small");
    }
  }

  [[nodiscard]] bool valid() const noexcept { return data_ != nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] Sva base() const noexcept { return base_; }

  /// SVA of element i.
  [[nodiscard]] Sva addr(std::size_t i) const noexcept { return base_ + i * sizeof(T); }

  [[nodiscard]] T value(std::size_t i) const noexcept {
    T v;
    std::memcpy(&v, data_ + i * sizeof(T), sizeof(T));
    return v;
  }

  void set_value(std::size_t i, T v) noexcept {
    std::memcpy(data_ + i * sizeof(T), &v, sizeof(T));
  }

 private:
  Sva base_ = 0;
  std::size_t count_ = 0;
  std::byte* data_ = nullptr;
};

}  // namespace ksr::mem
