// Ablation: the coherence-protocol features the paper leans on —
// read-snarfing (on/off) for the hot-spot barriers, poststore (on/off) for
// the global-wakeup-flag barriers, and the cost of intentional false
// sharing (the MCS packed word vs a padded variant).
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/atomic.hpp"
#include "ksr/sync/padded.hpp"

namespace {

using namespace ksr;         // NOLINT
using namespace ksr::bench;  // NOLINT
using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

struct BarrierCost {
  double seconds = 0;        // per episode
  double ring_requests = 0;  // machine-wide transactions per episode
};

BarrierCost barrier_cost(obs::Session& session, const std::string& label,
                         MachineConfig cfg, sync::BarrierKind kind,
                         bool use_poststore, int episodes) {
  KsrMachine m(cfg);
  ScopedObs obs(session, m, label);
  auto barrier = sync::make_barrier(m, kind, use_poststore);
  double t = 0;
  std::uint64_t req0 = 0;
  std::uint64_t req1 = 0;
  m.run([&](Cpu& cpu) {
    barrier->arrive(cpu);
    if (cpu.id() == 0) {
      for (unsigned c = 0; c < cpu.nproc(); ++c) {
        req0 += m.cell_pmon(c).ring_requests;
      }
    }
    const double t0 = cpu.seconds();
    for (int e = 0; e < episodes; ++e) {
      cpu.work(cpu.rng().below(500));
      barrier->arrive(cpu);
    }
    if (cpu.seconds() - t0 > t) t = cpu.seconds() - t0;
  });
  for (unsigned c = 0; c < cfg.nproc; ++c) {
    req1 += m.cell_pmon(c).ring_requests;
  }
  return {t / episodes,
          static_cast<double>(req1 - req0) / episodes};
}

/// False-sharing microbenchmark: 4 writers update bytes that either share
/// one sub-page (packed, as in the MCS arrival word) or sit on their own
/// sub-pages (padded). On an invalidation protocol each packed write costs
/// a ring transaction (§3.2.2: "the cost of the communication is at least
/// quadrupled").
void false_sharing(obs::Session& session, const BenchOptions& opt) {
  const int reps = opt.quick ? 50 : 300;
  auto run = [&](bool packed) {
    KsrMachine m(MachineConfig::ksr1(4));
    ScopedObs obs(session, m, packed ? "fs-packed" : "fs-padded");
    auto arr = m.alloc<std::uint8_t>("fs", 4 * mem::kSubPageBytes);
    double t = 0;
    m.run([&](Cpu& cpu) {
      const std::size_t idx = packed
                                  ? cpu.id()
                                  : static_cast<std::size_t>(cpu.id()) *
                                        mem::kSubPageBytes;
      const double t0 = cpu.seconds();
      for (int i = 0; i < reps; ++i) {
        cpu.write(arr, idx, static_cast<std::uint8_t>(i));
        cpu.work(50);
      }
      if (cpu.seconds() - t0 > t) t = cpu.seconds() - t0;
    });
    return t / reps;
  };
  const double packed = run(true);
  const double padded = run(false);
  TextTable t({"layout", "per-write (us)", "ratio"});
  t.add_row({"4 bytes packed in one sub-page (MCS word)",
             TextTable::num(packed * 1e6, 3),
             TextTable::num(packed / padded, 1) + "x"});
  t.add_row({"one byte per sub-page (padded)", TextTable::num(padded * 1e6, 3),
             "1.0x"});
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
  }
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ablation_coherence");
  const int episodes = opt.quick ? 5 : 20;
  print_header("Ablation: read-snarfing, poststore and false sharing",
               "mechanism checks for Sections 2, 3.2.2 and 3.3.3");

  std::cout << "\n--- read-snarfing (16 procs) ---\n";
  TextTable t1({"barrier", "ON (us)", "OFF (us)", "ON ring tx/ep",
                "OFF ring tx/ep"});
  for (sync::BarrierKind kind :
       {sync::BarrierKind::kCounter, sync::BarrierKind::kTreeM,
        sync::BarrierKind::kTournamentM}) {
    MachineConfig on = MachineConfig::ksr1(16);
    MachineConfig off = on;
    off.read_snarfing = false;
    const std::string ks(to_string(kind));
    const BarrierCost c_on =
        barrier_cost(session, ks + " snarf=on", on, kind, true, episodes);
    const BarrierCost c_off =
        barrier_cost(session, ks + " snarf=off", off, kind, true, episodes);
    t1.add_row({std::string(to_string(kind)),
                TextTable::num(c_on.seconds * 1e6, 1),
                TextTable::num(c_off.seconds * 1e6, 1),
                TextTable::num(c_on.ring_requests, 0),
                TextTable::num(c_off.ring_requests, 0)});
  }
  if (opt.csv) {
    t1.print_csv();
  } else {
    t1.print();
    std::cout << "Snarfing lets ONE re-read refresh every spinner's"
                 " placeholder.\nOn a lightly loaded ring the spinners'"
                 " separate fetches pipeline,\nso the big win is in ring"
                 " *traffic* (transactions per episode),\nwhich is exactly"
                 " the headroom that matters once applications load\nthe"
                 " ring (the IS saturation effect).\n";
  }

  std::cout << "\n--- poststore assist on wake-up flags (16 procs) ---\n";
  TextTable t2({"barrier", "ON (us)", "OFF (us)", "ON ring tx/ep",
                "OFF ring tx/ep"});
  for (sync::BarrierKind kind :
       {sync::BarrierKind::kTreeM, sync::BarrierKind::kTournamentM,
        sync::BarrierKind::kMcsM}) {
    const MachineConfig cfg = MachineConfig::ksr1(16);
    const std::string ks(to_string(kind));
    const BarrierCost c_on =
        barrier_cost(session, ks + " poststore=on", cfg, kind, true, episodes);
    const BarrierCost c_off =
        barrier_cost(session, ks + " poststore=off", cfg, kind, false,
                     episodes);
    t2.add_row({std::string(to_string(kind)),
                TextTable::num(c_on.seconds * 1e6, 1),
                TextTable::num(c_off.seconds * 1e6, 1),
                TextTable::num(c_on.ring_requests, 0),
                TextTable::num(c_off.ring_requests, 0)});
  }
  if (opt.csv) {
    t2.print_csv();
  } else {
    t2.print();
    std::cout << "The paper: 'Read-snarfing is further aided by the use of\n"
                 "poststore in our implementation of these algorithms.'\n";
  }

  std::cout << "\n--- intentional false sharing (the MCS arrival word) ---\n";
  false_sharing(session, opt);
  return 0;
}
