# Empty dependencies file for bench_ext_lu.
# This may be replaced when dependencies are built.
