#include "ksr/nas/mg.hpp"

#include <cmath>
#include <functional>
#include <string>

#include "ksr/sim/rng.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::nas {

namespace {

constexpr double kOmega = 0.6;  // weighted-Jacobi damping

// Both the simulated and the reference implementation run EXACTLY these
// per-point formulas (weighted Jacobi, 7-point Laplacian, 8-child averaging
// restriction, injection prolongation). Jacobi — not Gauss-Seidel — keeps
// every point's update independent of sweep order, so results are identical
// for any processor count.

[[nodiscard]] double jacobi_point(double u_c, double rhs, double u_xm,
                                  double u_xp, double u_ym, double u_yp,
                                  double u_zm, double u_zp) {
  const double au = 6.0 * u_c - (u_xm + u_xp + u_ym + u_yp + u_zm + u_zp);
  return u_c + kOmega * (rhs - au) / 6.0;
}

[[nodiscard]] double residual_point(double u_c, double rhs, double u_xm,
                                    double u_xp, double u_ym, double u_yp,
                                    double u_zm, double u_zp) {
  const double au = 6.0 * u_c - (u_xm + u_xp + u_ym + u_yp + u_zm + u_zp);
  return rhs - au;
}

/// NAS-style sparse charge distribution: +1 / -1 at pseudo-random points.
void fill_rhs(std::vector<double>& rhs, std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  const std::size_t points = n * n * n;
  for (std::size_t k = 0; k < 20; ++k) {
    rhs[rng.below(points)] += (k % 2 == 0) ? 1.0 : -1.0;
  }
}

// ------------------------------------------------------------- reference

struct HostLevel {
  std::size_t n = 0;
  std::vector<double> u, r, tmp;
};

void host_smooth(HostLevel& L) {
  const std::size_t n = L.n;
  auto idx = [n](std::size_t x, std::size_t y, std::size_t z) {
    return (z * n + y) * n + x;
  };
  for (std::size_t z = 1; z + 1 < n; ++z) {
    for (std::size_t y = 1; y + 1 < n; ++y) {
      for (std::size_t x = 1; x + 1 < n; ++x) {
        L.tmp[idx(x, y, z)] = jacobi_point(
            L.u[idx(x, y, z)], L.r[idx(x, y, z)], L.u[idx(x - 1, y, z)],
            L.u[idx(x + 1, y, z)], L.u[idx(x, y - 1, z)],
            L.u[idx(x, y + 1, z)], L.u[idx(x, y, z - 1)],
            L.u[idx(x, y, z + 1)]);
      }
    }
  }
  for (std::size_t z = 1; z + 1 < n; ++z) {
    for (std::size_t y = 1; y + 1 < n; ++y) {
      for (std::size_t x = 1; x + 1 < n; ++x) {
        L.u[idx(x, y, z)] = L.tmp[idx(x, y, z)];
      }
    }
  }
}

void host_residual(HostLevel& L) {
  const std::size_t n = L.n;
  auto idx = [n](std::size_t x, std::size_t y, std::size_t z) {
    return (z * n + y) * n + x;
  };
  for (std::size_t z = 1; z + 1 < n; ++z) {
    for (std::size_t y = 1; y + 1 < n; ++y) {
      for (std::size_t x = 1; x + 1 < n; ++x) {
        L.tmp[idx(x, y, z)] = residual_point(
            L.u[idx(x, y, z)], L.r[idx(x, y, z)], L.u[idx(x - 1, y, z)],
            L.u[idx(x + 1, y, z)], L.u[idx(x, y - 1, z)],
            L.u[idx(x, y + 1, z)], L.u[idx(x, y, z - 1)],
            L.u[idx(x, y, z + 1)]);
      }
    }
  }
}

}  // namespace

MgResult mg_reference(const MgConfig& cfg) {
  const unsigned levels = cfg.log2_n;
  std::vector<HostLevel> L(levels + 1);
  for (unsigned l = 1; l <= levels; ++l) {
    L[l].n = 1ull << l;
    const std::size_t p = L[l].n * L[l].n * L[l].n;
    L[l].u.assign(p, 0.0);
    L[l].r.assign(p, 0.0);
    L[l].tmp.assign(p, 0.0);
  }
  fill_rhs(L[levels].r, L[levels].n, cfg.seed);

  auto norm = [&](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x * x;
    return std::sqrt(s);
  };

  MgResult out;
  out.initial_residual = norm(L[levels].r);

  std::function<void(unsigned)> vcycle = [&](unsigned l) {
    HostLevel& f = L[l];
    for (unsigned s = 0; s < cfg.smooth_steps; ++s) host_smooth(f);
    if (l == 1) return;
    host_residual(f);
    HostLevel& c = L[l - 1];
    const std::size_t cn = c.n;
    auto cidx = [cn](std::size_t x, std::size_t y, std::size_t z) {
      return (z * cn + y) * cn + x;
    };
    const std::size_t fn = f.n;
    auto fidx = [fn](std::size_t x, std::size_t y, std::size_t z) {
      return (z * fn + y) * fn + x;
    };
    // Restrict the residual (8-child average) and clear the correction.
    for (std::size_t z = 0; z < cn; ++z) {
      for (std::size_t y = 0; y < cn; ++y) {
        for (std::size_t x = 0; x < cn; ++x) {
          double acc = 0;
          for (std::size_t d = 0; d < 8; ++d) {
            acc += f.tmp[fidx(2 * x + (d & 1), 2 * y + ((d >> 1) & 1),
                              2 * z + (d >> 2))];
          }
          c.r[cidx(x, y, z)] = 0.125 * acc;
          c.u[cidx(x, y, z)] = 0.0;
        }
      }
    }
    vcycle(l - 1);
    // Prolongate: add the coarse correction to all 8 children.
    for (std::size_t z = 0; z < cn; ++z) {
      for (std::size_t y = 0; y < cn; ++y) {
        for (std::size_t x = 0; x < cn; ++x) {
          const double corr = c.u[cidx(x, y, z)];
          for (std::size_t d = 0; d < 8; ++d) {
            f.u[fidx(2 * x + (d & 1), 2 * y + ((d >> 1) & 1),
                     2 * z + (d >> 2))] += corr;
          }
        }
      }
    }
    for (unsigned s = 0; s < cfg.smooth_steps; ++s) host_smooth(f);
  };

  for (unsigned c = 0; c < cfg.v_cycles; ++c) vcycle(levels);

  host_residual(L[levels]);
  out.final_residual = norm(L[levels].tmp);
  double checksum = 0;
  for (double x : L[levels].u) checksum += x;
  out.checksum = checksum;
  return out;
}

// --------------------------------------------------------------- machine

namespace {

/// One grid level on the simulated machine.
struct SimLevel {
  std::size_t n = 0;
  mem::SharedArray<double> u, r, tmp;
};

struct MgContext {
  machine::Cpu& cpu;
  std::vector<SimLevel>& L;
  const MgConfig& cfg;
  sync::Barrier& barrier;
  unsigned nproc;
  unsigned me;

  [[nodiscard]] std::size_t idx(const SimLevel& lv, std::size_t x,
                                std::size_t y, std::size_t z) const {
    return (z * lv.n + y) * lv.n + x;
  }
  [[nodiscard]] std::size_t z_lo(const SimLevel& lv) const {
    return lv.n * me / nproc;
  }
  [[nodiscard]] std::size_t z_hi(const SimLevel& lv) const {
    return lv.n * (me + 1) / nproc;
  }

  void smooth(SimLevel& lv) {
    auto& cpu_ = cpu;
    const std::size_t n = lv.n;
    for (std::size_t z = std::max<std::size_t>(z_lo(lv), 1);
         z < std::min(z_hi(lv), n - 1); ++z) {
      for (std::size_t y = 1; y + 1 < n; ++y) {
        for (std::size_t x = 1; x + 1 < n; ++x) {
          const double v = jacobi_point(
              cpu_.read(lv.u, idx(lv, x, y, z)),
              cpu_.read(lv.r, idx(lv, x, y, z)),
              cpu_.read(lv.u, idx(lv, x - 1, y, z)),
              cpu_.read(lv.u, idx(lv, x + 1, y, z)),
              cpu_.read(lv.u, idx(lv, x, y - 1, z)),
              cpu_.read(lv.u, idx(lv, x, y + 1, z)),
              cpu_.read(lv.u, idx(lv, x, y, z - 1)),
              cpu_.read(lv.u, idx(lv, x, y, z + 1)));
          cpu_.write(lv.tmp, idx(lv, x, y, z), v);
          cpu_.work(cfg.work_per_point);
        }
      }
    }
    barrier.arrive(cpu_);
    for (std::size_t z = std::max<std::size_t>(z_lo(lv), 1);
         z < std::min(z_hi(lv), n - 1); ++z) {
      for (std::size_t y = 1; y + 1 < n; ++y) {
        for (std::size_t x = 1; x + 1 < n; ++x) {
          cpu_.write(lv.u, idx(lv, x, y, z),
                     cpu_.read(lv.tmp, idx(lv, x, y, z)));
          cpu_.work(2);
        }
      }
    }
    barrier.arrive(cpu_);
  }

  void residual(SimLevel& lv) {
    auto& cpu_ = cpu;
    const std::size_t n = lv.n;
    for (std::size_t z = std::max<std::size_t>(z_lo(lv), 1);
         z < std::min(z_hi(lv), n - 1); ++z) {
      for (std::size_t y = 1; y + 1 < n; ++y) {
        for (std::size_t x = 1; x + 1 < n; ++x) {
          const double v = residual_point(
              cpu_.read(lv.u, idx(lv, x, y, z)),
              cpu_.read(lv.r, idx(lv, x, y, z)),
              cpu_.read(lv.u, idx(lv, x - 1, y, z)),
              cpu_.read(lv.u, idx(lv, x + 1, y, z)),
              cpu_.read(lv.u, idx(lv, x, y - 1, z)),
              cpu_.read(lv.u, idx(lv, x, y + 1, z)),
              cpu_.read(lv.u, idx(lv, x, y, z - 1)),
              cpu_.read(lv.u, idx(lv, x, y, z + 1)));
          cpu_.write(lv.tmp, idx(lv, x, y, z), v);
          cpu_.work(cfg.work_per_point);
        }
      }
    }
    barrier.arrive(cpu_);
  }

  void vcycle(unsigned l) {
    SimLevel& f = L[l];
    for (unsigned s = 0; s < cfg.smooth_steps; ++s) smooth(f);
    if (l == 1) return;
    residual(f);
    SimLevel& c = L[l - 1];
    const std::size_t cn = c.n;
    // Restrict (coarse slab owners pull from the fine grid).
    for (std::size_t z = z_lo(c); z < z_hi(c); ++z) {
      for (std::size_t y = 0; y < cn; ++y) {
        for (std::size_t x = 0; x < cn; ++x) {
          double acc = 0;
          for (std::size_t d = 0; d < 8; ++d) {
            acc += cpu.read(f.tmp, idx(f, 2 * x + (d & 1),
                                       2 * y + ((d >> 1) & 1),
                                       2 * z + (d >> 2)));
          }
          cpu.write(c.r, idx(c, x, y, z), 0.125 * acc);
          cpu.write(c.u, idx(c, x, y, z), 0.0);
          cpu.work(cfg.work_per_point);
        }
      }
    }
    barrier.arrive(cpu);
    vcycle(l - 1);
    // Prolongate (coarse owners push into the fine grid).
    for (std::size_t z = z_lo(c); z < z_hi(c); ++z) {
      for (std::size_t y = 0; y < cn; ++y) {
        for (std::size_t x = 0; x < cn; ++x) {
          const double corr = cpu.read(c.u, idx(c, x, y, z));
          for (std::size_t d = 0; d < 8; ++d) {
            const std::size_t fi = idx(f, 2 * x + (d & 1),
                                       2 * y + ((d >> 1) & 1),
                                       2 * z + (d >> 2));
            cpu.write(f.u, fi, cpu.read(f.u, fi) + corr);
          }
          cpu.work(cfg.work_per_point);
        }
      }
    }
    barrier.arrive(cpu);
    for (unsigned s = 0; s < cfg.smooth_steps; ++s) smooth(f);
  }
};

}  // namespace

MgResult run_mg(machine::Machine& m, const MgConfig& cfg) {
  const unsigned levels = cfg.log2_n;
  const unsigned nproc = m.nproc();
  std::vector<SimLevel> L(levels + 1);
  for (unsigned l = 1; l <= levels; ++l) {
    L[l].n = 1ull << l;
    const std::size_t p = L[l].n * L[l].n * L[l].n;
    L[l].u = m.alloc<double>("mg.u" + std::to_string(l), p);
    L[l].r = m.alloc<double>("mg.r" + std::to_string(l), p);
    L[l].tmp = m.alloc<double>("mg.t" + std::to_string(l), p);
  }
  {
    std::vector<double> rhs(L[levels].n * L[levels].n * L[levels].n, 0.0);
    fill_rhs(rhs, L[levels].n, cfg.seed);
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      L[levels].r.set_value(i, rhs[i]);
    }
  }

  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  MgResult out;
  {
    double s = 0;
    for (std::size_t i = 0; i < L[levels].r.size(); ++i) {
      const double v = L[levels].r.value(i);
      s += v * v;
    }
    out.initial_residual = std::sqrt(s);
  }

  double t_max = 0;
  m.run([&](machine::Cpu& cpu) {
    // Warm-up: own my slabs at every level.
    for (unsigned l = 1; l <= levels; ++l) {
      const std::size_t n = L[l].n;
      const std::size_t lo = n * cpu.id() / nproc;
      const std::size_t hi = n * (cpu.id() + 1) / nproc;
      for (std::size_t z = lo; z < hi; ++z) {
        cpu.read_range(L[l].u.addr((z * n) * n), n * n * sizeof(double));
        cpu.read_range(L[l].r.addr((z * n) * n), n * n * sizeof(double));
      }
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    MgContext ctx{cpu, L, cfg, *barrier, nproc, cpu.id()};
    for (unsigned c = 0; c < cfg.v_cycles; ++c) ctx.vcycle(levels);

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;

    // Final residual, computed in simulation (cell 0 reduces host-side
    // below from tmp).
    ctx.residual(L[levels]);
  });
  out.seconds = t_max;

  double s = 0, checksum = 0;
  const std::size_t n = L[levels].n;
  for (std::size_t z = 1; z + 1 < n; ++z) {
    for (std::size_t y = 1; y + 1 < n; ++y) {
      for (std::size_t x = 1; x + 1 < n; ++x) {
        const double v = L[levels].tmp.value((z * n + y) * n + x);
        s += v * v;
      }
    }
  }
  for (std::size_t i = 0; i < L[levels].u.size(); ++i) {
    checksum += L[levels].u.value(i);
  }
  out.final_residual = std::sqrt(s);
  out.checksum = checksum;
  return out;
}

}  // namespace ksr::nas
