#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

// Small-buffer type-erased `void()` callback for the event queue hot path.
//
// Every event the engine dispatches used to be a `std::function<void()>`,
// which heap-allocates for captures beyond ~16 bytes. The engine's actual
// capture sets (fiber resume thunks, ring slot claims and deliveries, bus
// grants) are small and move-only-friendly, so InlineFn stores up to
// kInlineBytes of capture state inline and never allocates on that path.
// Larger callables still work — they are boxed behind a unique_ptr — so the
// type imposes no hard size limit, only a fast path.
//
// InlineFn is move-only (an event is dispatched exactly once; copyability
// would force every capture to be copyable, as std::function does).
namespace ksr::sim {

class InlineFn {
 public:
  /// Sized for the largest engine-internal capture set (the ring delivery
  /// closure: this + slot/position ids + a Done std::function + the wait).
  static constexpr std::size_t kInlineBytes = 72;

  InlineFn() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_trivially_copyable_v<Fn> &&
                  std::is_trivially_destructible_v<Fn>) {
      // The common case for engine events (captures of pointers and ids):
      // relocation is a fixed-size memcpy, no indirect call, no destructor.
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kTrivialOps<Fn>;
    } else if constexpr (sizeof(Fn) <= kInlineBytes &&
                         alignof(Fn) <= alignof(std::max_align_t) &&
                         std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_))
          std::unique_ptr<Fn>(new Fn(std::forward<F>(f)));
      ops_ = &kBoxedOps<Fn>;
    }
  }

  InlineFn(InlineFn&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      if (ops_->relocate == nullptr) {
        std::memcpy(buf_, o.buf_, kInlineBytes);
      } else {
        ops_->relocate(buf_, o.buf_);
      }
      o.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& o) noexcept {
    if (this != &o) {
      reset();
      ops_ = o.ops_;
      if (ops_ != nullptr) {
        if (ops_->relocate == nullptr) {
          std::memcpy(buf_, o.buf_, kInlineBytes);
        } else {
          ops_->relocate(buf_, o.buf_);
        }
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Invoke the stored callable. Precondition: non-empty.
  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Destroy the stored callable (no-op when empty). The engine dispatches
  /// events in place from its slot pool and resets the slot right after the
  /// call, instead of paying a full-buffer move on every dispatch.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void* self);
    // Move-construct into dst and destroy src. nullptr means "memcpy the
    // whole buffer and skip destruction" (trivially copyable capture).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* self) noexcept;  // nullptr: trivially destructible
  };

  template <typename Fn>
  static constexpr Ops kTrivialOps{
      [](void* self) { (*static_cast<Fn*>(self))(); }, nullptr, nullptr};

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](void* self) { (*static_cast<Fn*>(self))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* self) noexcept { static_cast<Fn*>(self)->~Fn(); }};

  template <typename Fn>
  static constexpr Ops kBoxedOps{
      [](void* self) { (**static_cast<std::unique_ptr<Fn>*>(self))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) std::unique_ptr<Fn>(
            std::move(*static_cast<std::unique_ptr<Fn>*>(src)));
        static_cast<std::unique_ptr<Fn>*>(src)->~unique_ptr();
      },
      [](void* self) noexcept {
        static_cast<std::unique_ptr<Fn>*>(self)->~unique_ptr();
      }};

  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ksr::sim
