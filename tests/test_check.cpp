// Tests for the ALLCACHE invariant checker (ksr/check, docs/CHECKING.md):
// clean runs audit violation-free, every invariant class detects a
// deliberately corrupted machine state (the checker can actually fail), the
// checker never perturbs the simulated schedule, and the schedule fuzzer's
// seeded tie-breaking is exactly reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "ksr/check/checker.hpp"
#include "ksr/machine/coherent_machine.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sim/engine.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/locks.hpp"

namespace ksr::machine {
namespace {

// Minimal coherent machine with an instantaneous-ish interconnect, plus
// public corruption handles so tests can fabricate the exact illegal states
// a protocol bug would leave behind (the production machines keep their
// cells_ and dir_ protected, and rightly so).
class MutableMachine : public CoherentMachine {
 public:
  explicit MutableMachine(const MachineConfig& cfg) : CoherentMachine(cfg) {}

  /// Overwrite one cell's local-cache line state (frame must exist) —
  /// e.g. resurrect a copy the protocol invalidated, as if the invalidate
  /// packet had been skipped.
  void corrupt_line_state(unsigned cell, mem::SubPageId sp,
                          cache::LineState st) {
    cells_[cell].local.set_state(sp, st);
  }
  /// Drop a cell from the directory's copy set without touching the cell.
  void corrupt_drop_holder(unsigned cell, mem::SubPageId sp) {
    dir_find(sp)->holders.clear(cell);
  }
  /// Flip the directory's atomic bit without touching any line state.
  void corrupt_set_atomic(mem::SubPageId sp, bool atomic) {
    dir_find(sp)->atomic = atomic;
  }

 protected:
  void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                 std::function<void(sim::Duration)> done) override {
    (void)cell;
    (void)sp;
    (void)target_leaf;
    engine_.at(engine_.now() + 200, [done = std::move(done)] { done(0); });
  }
  [[nodiscard]] sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const override {
    (void)kind;
    (void)crossed_leaf;
    return 100;
  }
};

// Drive the machine into a known end state: arr's first sub-page is owned
// Exclusive by cell 0 with cell 1 holding an Invalid placeholder (cell 1 read
// the line, then cell 0's second write invalidated it).
mem::SubPageId setup_owned_with_placeholder(MutableMachine& m,
                                            mem::SharedArray<double>& arr) {
  auto flag = m.alloc<int>("flag", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 1.0);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) != 1) cpu.work(300);
      (void)cpu.read(arr, 0);
    }
  });
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) cpu.write(arr, 0, 2.0);
  });
  return mem::subpage_of(arr.addr(0));
}

// Drive arr's first sub-page read-shared by both cells (snarf/refresh state
// the I5 freeze audit protects).
mem::SubPageId setup_read_shared(MutableMachine& m,
                                 mem::SharedArray<double>& arr) {
  auto flag = m.alloc<int>("flag2", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 3.0);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) != 1) cpu.work(300);
      (void)cpu.read(arr, 0);
    }
  });
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 1) (void)cpu.read(arr, 0);
    else (void)cpu.read(arr, 0);
  });
  return mem::subpage_of(arr.addr(0));
}

TEST(Checker, CleanLockWorkloadAuditsViolationFree) {
  KsrMachine m(MachineConfig::ksr1(4));
  check::InvariantChecker checker(m);
  m.attach_checker(&checker);  // also registers the rings for I6
  sync::HardwareLock lock(m, "lk");
  auto counter = m.alloc<std::uint32_t>("ctr", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 10; ++i) {
      lock.acquire(cpu);
      cpu.write(counter, 0, cpu.read(counter, 0) + 1);
      lock.release(cpu);
    }
  });
  EXPECT_NO_THROW(checker.audit_all());
  EXPECT_EQ(counter.value(0), 40u);
  EXPECT_EQ(checker.stats().full_audits, 1u);
  if (check::kHooksCompiled) {
    EXPECT_GT(checker.stats().transitions, 0u);
  } else {
    EXPECT_EQ(checker.stats().transitions, 0u);
  }
  m.attach_checker(nullptr);
}

TEST(Checker, SkippedInvalidateIsCaught) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  const mem::SubPageId sp = setup_owned_with_placeholder(m, arr);
  ASSERT_EQ(m.cell_line_state(0, sp), cache::LineState::kExclusive);
  ASSERT_EQ(m.cell_line_state(1, sp), cache::LineState::kInvalid);

  check::InvariantChecker checker(m);
  EXPECT_NO_THROW(checker.audit_all());

  // As if cell 1 never processed the invalidate: its stale read copy is
  // back while cell 0 believes it holds the only copy.
  m.corrupt_line_state(1, sp, cache::LineState::kShared);
  try {
    checker.audit_all();
    FAIL() << "corrupted state passed the audit";
  } catch (const check::ViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("I1.ownership"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("arr"), std::string::npos)
        << "diagnostic names the heap region: " << e.what();
  }
}

TEST(Checker, DoubleOwnerIsCaught) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  const mem::SubPageId sp = setup_read_shared(m, arr);
  ASSERT_EQ(m.cell_line_state(1, sp), cache::LineState::kShared);

  check::InvariantChecker checker(m);
  m.corrupt_line_state(0, sp, cache::LineState::kExclusive);
  m.corrupt_line_state(1, sp, cache::LineState::kExclusive);
  try {
    checker.audit_all();
    FAIL() << "two writable copies passed the audit";
  } catch (const check::ViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("I1.ownership"), std::string::npos)
        << e.what();
  }
}

TEST(Checker, DirectoryMissingHolderIsCaught) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  const mem::SubPageId sp = setup_read_shared(m, arr);

  check::InvariantChecker checker(m);
  m.corrupt_drop_holder(1, sp);
  try {
    checker.audit_all();
    FAIL() << "directory/copy-set mismatch passed the audit";
  } catch (const check::ViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("I3.copy-set"), std::string::npos)
        << e.what();
  }
}

TEST(Checker, AtomicBitMismatchIsCaught) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  const mem::SubPageId sp = setup_owned_with_placeholder(m, arr);

  check::InvariantChecker checker(m);
  m.corrupt_set_atomic(sp, true);  // dir says locked, no line is Atomic
  try {
    checker.audit_all();
    FAIL() << "atomic-bit mismatch passed the audit";
  } catch (const check::ViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("I2.atomicity"), std::string::npos)
        << e.what();
  }
}

TEST(Checker, StaleReadSharedValueIsCaught) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  const mem::SubPageId sp = setup_read_shared(m, arr);

  check::InvariantChecker checker(m);
  checker.audit_all();  // records the freeze hash of the read-shared bytes
  // Mutate the heap bytes behind the protocol's back — the state a missed
  // invalidate-before-write or a corrupted poststore refresh would leave.
  arr.set_value(0, 99.0);
  try {
    checker.audit_all();
    FAIL() << "stale read-shared bytes passed the audit";
  } catch (const check::ViolationError& e) {
    EXPECT_NE(std::string(e.what()).find("I5.values"), std::string::npos)
        << e.what();
  }
  (void)sp;
}

TEST(Checker, ResetForgetsFreezeRecords) {
  MutableMachine m(MachineConfig::ksr1(2));
  auto arr = m.alloc<double>("arr", 16);
  (void)setup_read_shared(m, arr);

  check::InvariantChecker checker(m);
  m.attach_checker(&checker);
  checker.audit_all();        // freeze hash recorded
  m.reset_memory_system();    // drops caches+dir and resets the checker
  arr.set_value(0, 123.0);    // legal: nothing is cached any more
  EXPECT_NO_THROW(checker.audit_all());
  m.attach_checker(nullptr);
}

TEST(Checker, AttachedCheckerDoesNotPerturbTheSchedule) {
  const auto run_once = [](bool with_checker) {
    KsrMachine m(MachineConfig::ksr1(8));
    check::InvariantChecker checker(m);
    if (with_checker) m.attach_checker(&checker);
    auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
    m.run([&](Cpu& cpu) {
      for (int e = 0; e < 6; ++e) {
        cpu.work(cpu.rng().below(400));
        barrier->arrive(cpu);
      }
    });
    if (with_checker) m.attach_checker(nullptr);
    return m.engine().events_dispatched();
  };
  // Audits read state and hash bytes but never schedule events, so the
  // simulated schedule — and with it every fingerprint — is identical.
  EXPECT_EQ(run_once(false), run_once(true));
}

// Regression for a latent protocol bug the checker flushed out: a poststore
// packet in flight while another cell wins the line with get_subpage. The
// commit used to refresh the placeholder copies to Shared anyway, handing
// out readable copies of an Atomic line (I1/I2 violations) and demoting the
// lock holder. Now the stale update is dropped. Three cells are needed (the
// issuer's own placeholder is excluded from the refresh set), and the sweep
// over the contender's start offset covers the whole in-flight window.
TEST(Checker, PoststoreRacingGetSubpageIsDropped) {
  for (sim::Duration delta = 0; delta <= 9000; delta += 250) {
    KsrMachine m(MachineConfig::ksr1(3));
    auto arr = m.alloc<double>("arr", 16);
    auto flag = m.alloc<int>("flag", 1);
    m.run([&](Cpu& cpu) {
      if (cpu.id() == 2) (void)cpu.read(arr, 0);  // placeholder-to-be
      if (cpu.id() == 0) cpu.write(flag, 0, 1);
    });
    m.run([&](Cpu& cpu) {
      if (cpu.id() == 0) {
        cpu.write(arr, 0, 4.0);     // invalidates cell 2 -> placeholder
        cpu.post_store(arr.addr(0));  // packet rides asynchronously
        cpu.work(20000);
      } else if (cpu.id() == 1) {
        cpu.work(delta);
        cpu.get_subpage(arr.addr(0));  // may win while the packet flies
        cpu.work(8000);
        cpu.release_subpage(arr.addr(0));
      }
    });
    check::InvariantChecker checker(m);
    EXPECT_NO_THROW(checker.audit_all()) << "delta=" << delta;
  }
}

// ------------------------------------------------- schedule fuzzing ----

TEST(ScheduleFuzz, TieBreakSeedIsReproducibleAndSeedZeroIsInsertionOrder) {
  const auto order_with_seed = [](std::uint64_t seed) {
    sim::Engine eng;
    eng.set_tie_break_seed(seed);
    std::vector<int> order;
    for (int i = 0; i < 12; ++i) {
      eng.at(1000, [&order, i] { order.push_back(i); });
    }
    eng.run();
    return order;
  };
  const std::vector<int> insertion{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  EXPECT_EQ(order_with_seed(0), insertion);
  const auto a = order_with_seed(7);
  EXPECT_EQ(a, order_with_seed(7));    // exact replay
  EXPECT_NE(a, insertion);             // actually perturbs
  EXPECT_NE(a, order_with_seed(8));    // distinct schedule per seed
}

TEST(ScheduleFuzz, FuzzSeedPerturbsTheMachineScheduleDeterministically) {
  const auto events_for = [](std::uint64_t seed) {
    MachineConfig cfg = MachineConfig::ksr1(4);
    cfg.sched_fuzz_seed = seed;
    KsrMachine m(cfg);
    sync::HardwareLock lock(m, "lk");
    auto counter = m.alloc<std::uint32_t>("ctr", 1);
    m.run([&](Cpu& cpu) {
      for (int i = 0; i < 8; ++i) {
        lock.acquire(cpu);
        cpu.write(counter, 0, cpu.read(counter, 0) + 1);
        lock.release(cpu);
        cpu.work(cpu.rng().below(500));
      }
    });
    EXPECT_EQ(counter.value(0), 32u) << "seed=" << seed;
    return m.engine().events_dispatched();
  };
  const std::uint64_t reference = events_for(0);
  const std::uint64_t fuzzed = events_for(41);
  EXPECT_EQ(fuzzed, events_for(41));  // replayable
  EXPECT_NE(fuzzed, reference);       // schedule genuinely differs
}

}  // namespace
}  // namespace ksr::machine
