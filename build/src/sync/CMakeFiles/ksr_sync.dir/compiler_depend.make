# Empty compiler generated dependencies file for ksr_sync.
# This may be replaced when dependencies are built.
