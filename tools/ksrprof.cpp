// ksrprof — offline trace analysis and simulated-time profiling.
//
// Consumes a trace CSV exported by --trace-out FILE.csv (either the merged
// session format with a leading `job` column, or a raw Tracer::write_csv
// dump) and prints the same profile report the in-process --report flag
// produces: per-subpage sharing-pattern classification (read-only,
// migratory, producer-consumer, falsely-shared, lock) ranked by contention,
// barrier arrival skew with last-arriver attribution, lock hold-vs-wait
// decomposition, and per-cpu stall attribution.
//
//   ksrprof trace.csv                       # report to stdout
//   ksrprof trace.csv --top 20              # longer ranking tables
//   ksrprof trace.csv --out report.txt      # report to a file
//   ksrprof trace.csv --flame stacks.txt    # collapsed stacks for
//                                           # speedscope / inferno
//
// Region names come from the `# region ...` footers the session CSV writes;
// a raw tracer dump has none, so sub-pages print as bare ids. All output is
// integer-math only: byte-identical across hosts for the same trace.
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ksr/obs/analyze.hpp"
#include "ksr/obs/tracer.hpp"
#include "ksr/util/parse.hpp"

namespace {

using namespace ksr;  // NOLINT

struct JobTrace {
  std::string label;
  std::vector<obs::Tracer::Record> records;
  std::vector<obs::RegionSpan> regions;
  std::uint64_t dropped = 0;
};

struct ParsedCsv {
  std::vector<JobTrace> jobs;  // first-appearance order
  bool has_job_column = false;
};

[[nodiscard]] std::vector<std::string> split(const std::string& line,
                                             char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t c = line.find(sep, pos);
    if (c == std::string::npos) {
      out.push_back(line.substr(pos));
      return out;
    }
    out.push_back(line.substr(pos, c - pos));
    pos = c + 1;
  }
}

/// Warn-and-fallback parse via the shared strict parser (ksr/util/parse.hpp):
/// malformed, partial, or overflowing numeric fields warn on stderr and
/// parse as `def` instead of silently truncating at the first bad byte.
[[nodiscard]] std::uint64_t to_u64(const std::string& s,
                                   std::uint64_t def = 0) {
  return ksr::util::to_u64_or(s, def, "ksrprof", "numeric field");
}
[[nodiscard]] std::int64_t to_i64(const std::string& s,
                                  std::int64_t def = 0) {
  return ksr::util::to_i64_or(s, def, "ksrprof", "numeric field");
}

/// "key=value" lookup inside a comment footer. The value runs to the next
/// " key=" marker (footer keys are fixed; values like job labels may
/// contain spaces), or to the end of the line for the last field (region
/// names).
[[nodiscard]] std::string footer_value(const std::string& line,
                                       const std::string& key,
                                       const std::string& next_key = {}) {
  const std::string pat = key + "=";
  const std::size_t at = line.find(pat);
  if (at == std::string::npos) return {};
  const std::size_t v0 = at + pat.size();
  const std::size_t v1 =
      next_key.empty() ? std::string::npos
                       : line.find(" " + next_key + "=", v0);
  return line.substr(v0, v1 == std::string::npos ? v1 : v1 - v0);
}

JobTrace& job_named(ParsedCsv& csv, const std::string& label) {
  for (JobTrace& j : csv.jobs) {
    if (j.label == label) return j;
  }
  csv.jobs.push_back({label, {}, {}, 0});
  return csv.jobs.back();
}

bool parse_csv(std::istream& is, ParsedCsv& out, std::string& err) {
  // A scratch tracer resolves category/event names back to the builtin ids
  // analyze() matches on (unknown names intern past the builtins and are
  // simply ignored by the analyzer).
  obs::Tracer names(1);
  std::string line;
  if (!std::getline(is, line)) {
    err = "empty input";
    return false;
  }
  if (line.rfind("job,", 0) == 0) {
    out.has_job_column = true;
  } else if (line.rfind("time_ns,", 0) != 0) {
    err = "unrecognized header '" + line + "'";
    return false;
  }
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      if (line.rfind("# region ", 0) == 0) {
        // "# region job=LABEL base=B bytes=S name=NAME"
        JobTrace& j = job_named(out, footer_value(line, "job", "base"));
        j.regions.push_back({to_u64(footer_value(line, "base", "bytes")),
                             to_u64(footer_value(line, "bytes", "name")),
                             footer_value(line, "name")});
      } else {
        // "# job=LABEL events=N dropped=M"
        const std::string dropped = footer_value(line, "dropped");
        if (!dropped.empty()) {
          JobTrace& j = job_named(out, footer_value(line, "job", "events"));
          j.dropped += to_u64(dropped);
        }
      }
      continue;
    }
    const std::vector<std::string> f = split(line, ',');
    const std::size_t base = out.has_job_column ? 1 : 0;
    if (f.size() < base + 6) {
      err = "malformed row '" + line + "'";
      return false;
    }
    JobTrace& j = job_named(out, out.has_job_column ? f[0] : std::string());
    obs::Tracer::Record r;
    r.t = to_u64(f[base + 0]);
    r.cat = names.intern_category(f[base + 1]);
    r.ev = names.intern_event(f[base + 2]);
    r.subject = to_u64(f[base + 3]);
    r.actor = to_u64(f[base + 4]);
    r.detail = to_i64(f[base + 5]);
    r.aux = f.size() > base + 6
                ? static_cast<std::uint32_t>(to_u64(f[base + 6]))
                : 0;
    j.records.push_back(r);
  }
  if (out.jobs.empty()) {
    err = "no records";
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ksrprof TRACE.csv [--top N] [--out FILE] [--flame FILE]\n"
      "\n"
      "TRACE.csv is a --trace-out export (merged session CSV or a raw\n"
      "tracer dump). Writes a simulated-time profile: sharing-pattern\n"
      "classification per sub-page, barrier/lock critical paths, stall\n"
      "attribution. --flame writes collapsed stacks for speedscope/inferno.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input;
  std::string out_path;
  std::string flame_path;
  obs::ReportOptions ropt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--top" && i + 1 < argc) {
      ropt.top_n = static_cast<std::size_t>(to_u64(argv[++i], ropt.top_n));
    } else if (a.rfind("--top=", 0) == 0) {
      ropt.top_n = static_cast<std::size_t>(to_u64(a.substr(6), ropt.top_n));
    } else if (a == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else if (a == "--flame" && i + 1 < argc) {
      flame_path = argv[++i];
    } else if (a.rfind("--flame=", 0) == 0) {
      flame_path = a.substr(8);
    } else if (!a.empty() && a[0] != '-' && input.empty()) {
      input = a;
    } else {
      std::fprintf(stderr, "ksrprof: unknown argument '%s'\n", a.c_str());
      return usage();
    }
  }
  if (input.empty()) return usage();

  std::ifstream is(input);
  if (!is) {
    std::fprintf(stderr, "ksrprof: cannot open '%s'\n", input.c_str());
    return 1;
  }
  ParsedCsv csv;
  std::string err;
  if (!parse_csv(is, csv, err)) {
    std::fprintf(stderr, "ksrprof: %s: %s\n", input.c_str(), err.c_str());
    return 1;
  }

  std::ofstream out_file;
  if (!out_path.empty()) {
    out_file.open(out_path, std::ios::out | std::ios::trunc);
    if (!out_file) {
      std::fprintf(stderr, "ksrprof: cannot open '%s'\n", out_path.c_str());
      return 1;
    }
  }
  std::ostream& out = out_path.empty() ? std::cout : out_file;

  std::ofstream flame;
  if (!flame_path.empty()) {
    flame.open(flame_path, std::ios::out | std::ios::trunc);
    if (!flame) {
      std::fprintf(stderr, "ksrprof: cannot open '%s'\n", flame_path.c_str());
      return 1;
    }
  }

  for (const JobTrace& j : csv.jobs) {
    const obs::Analysis a =
        obs::analyze(j.records.data(), j.records.data() + j.records.size(),
                     j.regions, j.dropped);
    if (csv.has_job_column) out << "=== job " << j.label << " ===\n";
    obs::write_report(out, a, ropt);
    if (csv.has_job_column) out << '\n';
    if (flame.is_open()) {
      if (csv.has_job_column) {
        // Prefix each stack with the job label so merged sweeps stay
        // separable in the flamegraph.
        std::ostringstream ss;
        obs::write_collapsed_stacks(ss, a);
        std::string stack_line;
        std::istringstream lines(ss.str());
        while (std::getline(lines, stack_line)) {
          flame << j.label << ';' << stack_line << '\n';
        }
      } else {
        obs::write_collapsed_stacks(flame, a);
      }
    }
  }
  // ofstreams swallow short writes (full disk) until the final flush; a
  // truncated report must not exit 0.
  int rc = 0;
  if (!out_path.empty()) {
    out_file.close();
    if (!out_file) {
      std::fprintf(stderr, "ksrprof: ERROR: short write to '%s'\n",
                   out_path.c_str());
      rc = 1;
    }
  }
  if (!flame_path.empty()) {
    flame.close();
    if (!flame) {
      std::fprintf(stderr, "ksrprof: ERROR: short write to '%s'\n",
                   flame_path.c_str());
      rc = 1;
    }
  }
  return rc;
}
