// MG and FT kernel correctness: MG matches its host reference exactly and
// reduces the residual; FT round-trips (ifft(fft(u)) == u) and its
// frequency-domain checksum is invariant across processor counts.
#include <gtest/gtest.h>

#include <cmath>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/ft.hpp"
#include "ksr/nas/mg.hpp"

namespace ksr::nas {
namespace {

using machine::KsrMachine;
using machine::MachineConfig;

TEST(Mg, ReferenceReducesResidual) {
  MgConfig cfg;
  cfg.log2_n = 4;
  cfg.v_cycles = 2;
  const MgResult r = mg_reference(cfg);
  EXPECT_LT(r.final_residual, 0.3 * r.initial_residual);
}

class MgAnyProcs : public testing::TestWithParam<unsigned> {};

TEST_P(MgAnyProcs, MatchesHostReference) {
  MgConfig cfg;
  cfg.log2_n = 4;
  cfg.v_cycles = 2;
  const MgResult ref = mg_reference(cfg);
  KsrMachine m(MachineConfig::ksr1(GetParam()).scaled_by(16));
  const MgResult got = run_mg(m, cfg);
  EXPECT_NEAR(got.checksum, ref.checksum, 1e-10);
  EXPECT_NEAR(got.final_residual, ref.final_residual, 1e-10);
  EXPECT_NEAR(got.initial_residual, ref.initial_residual, 1e-12);
  EXPECT_GT(got.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Procs, MgAnyProcs, testing::Values(1u, 2u, 4u, 8u));

class FtAnyProcs : public testing::TestWithParam<unsigned> {};

TEST_P(FtAnyProcs, RoundTripsAndChecksumInvariant) {
  FtConfig cfg;
  cfg.log2_n = 3;
  static double expected_checksum = -1;
  KsrMachine m(MachineConfig::ksr1(GetParam()).scaled_by(64));
  const FtResult r = run_ft(m, cfg);
  EXPECT_LT(r.roundtrip_error, 1e-9);
  if (expected_checksum < 0) {
    expected_checksum = r.checksum;
  } else {
    EXPECT_NEAR(r.checksum, expected_checksum, 1e-9);
  }
  EXPECT_GT(r.seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Procs, FtAnyProcs, testing::Values(1u, 2u, 4u, 8u));

TEST(Ft, TransposePhaseLoadsTheRing) {
  FtConfig cfg;
  cfg.log2_n = 4;
  KsrMachine m(MachineConfig::ksr1(8).scaled_by(64));
  (void)run_ft(m, cfg);
  cache::PerfMonitor total;
  for (unsigned c = 0; c < 8; ++c) total.add(m.cell_pmon(c));
  // The z-direction FFTs repartition the whole array: substantial traffic.
  EXPECT_GT(total.ring_requests, 1000u);
}

}  // namespace
}  // namespace ksr::nas
