file(REMOVE_RECURSE
  "CMakeFiles/bench_sec33_ep.dir/bench_sec33_ep.cpp.o"
  "CMakeFiles/bench_sec33_ep.dir/bench_sec33_ep.cpp.o.d"
  "bench_sec33_ep"
  "bench_sec33_ep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec33_ep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
