#include "ksr/sync/locks.hpp"

#include "ksr/sync/atomic.hpp"

namespace ksr::sync {

// Ticket-queue invariant: at most one ticket per processor is outstanding,
// so ticket % kBatchSlots never collides while a batch is pending.

TicketRwLock::TicketRwLock(machine::Machine& m, std::string_view name,
                           bool use_poststore)
    : meta_(m.alloc<std::uint32_t>(std::string(name) + ".meta", kFieldCount)),
      batch_readers_(
          m.alloc<std::uint32_t>(std::string(name) + ".batches", kBatchSlots)),
      serving_pub_(m, std::string(name) + ".serving", 1),
      use_poststore_(use_poststore && m.config().has_poststore) {}

void TicketRwLock::lock_meta(machine::Cpu& cpu) {
  cpu.get_subpage(meta_.addr(0));
}

void TicketRwLock::unlock_meta(machine::Cpu& cpu) {
  cpu.release_subpage(meta_.addr(0));
}

void TicketRwLock::advance(machine::Cpu& cpu) {
  const std::uint32_t serving = cpu.read(meta_, kServing) + 1;
  cpu.write(meta_, kServing, serving);
  serving_pub_.write_post(cpu, 0, serving, use_poststore_);
  // If the newly served ticket is a pending read batch, activate it.
  const std::uint32_t cnt = cpu.read(batch_readers_, serving % kBatchSlots);
  if (cnt > 0) {
    cpu.write(meta_, kActiveReaders, cnt);
    cpu.write(batch_readers_, serving % kBatchSlots, 0);
  }
}

namespace {

/// Bracket an acquisition with sync/lock-acquire + lock-acquired events.
template <typename Body>
void traced_acquire(machine::Cpu& cpu, std::uint64_t subject, Body body) {
  obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id());
  if (tr == nullptr) {
    body();
    return;
  }
  const sim::Time t0 = cpu.now();
  tr->log(t0, obs::kCatSync, obs::kEvLockAcquire, subject, cpu.id());
  body();
  tr->log(cpu.now(), obs::kCatSync, obs::kEvLockAcquired, subject, cpu.id(),
          static_cast<std::int64_t>(cpu.now() - t0));
}

void traced_release(machine::Cpu& cpu, std::uint64_t subject) {
  if (obs::Tracer* tr = cpu.machine().tracer_for_cell(cpu.id())) {
    tr->log(cpu.now(), obs::kCatSync, obs::kEvLockRelease, subject, cpu.id());
  }
}

}  // namespace

void TicketRwLock::acquire_read(machine::Cpu& cpu) {
  traced_acquire(cpu, 1, [&] { do_acquire_read(cpu); });
}

void TicketRwLock::acquire_write(machine::Cpu& cpu) {
  traced_acquire(cpu, 0, [&] { do_acquire_write(cpu); });
}

void TicketRwLock::do_acquire_read(machine::Cpu& cpu) {
  lock_meta(cpu);
  const std::uint32_t serving = cpu.read(meta_, kServing);
  std::uint32_t my_ticket;
  if (cpu.read(meta_, kTailIsRead) != 0 &&
      cpu.read(meta_, kTailTicket) >= serving) {
    // Combine with the tail read batch.
    my_ticket = cpu.read(meta_, kTailTicket);
    if (my_ticket == serving) {
      // The batch already holds the lock: join immediately.
      cpu.write(meta_, kActiveReaders, cpu.read(meta_, kActiveReaders) + 1);
      unlock_meta(cpu);
      return;
    }
    cpu.write(batch_readers_, my_ticket % kBatchSlots,
              cpu.read(batch_readers_, my_ticket % kBatchSlots) + 1);
  } else {
    my_ticket = cpu.read(meta_, kNextTicket);
    cpu.write(meta_, kNextTicket, my_ticket + 1);
    cpu.write(meta_, kTailIsRead, 1);
    cpu.write(meta_, kTailTicket, my_ticket);
    if (my_ticket == serving) {
      // Lock is free: the batch starts right now.
      cpu.write(meta_, kActiveReaders, 1);
      unlock_meta(cpu);
      return;
    }
    cpu.write(batch_readers_, my_ticket % kBatchSlots, 1);
  }
  unlock_meta(cpu);
  spin_until(cpu, [&] { return serving_pub_.read(cpu, 0) >= my_ticket; });
}

void TicketRwLock::release_read(machine::Cpu& cpu) {
  traced_release(cpu, 1);
  lock_meta(cpu);
  const std::uint32_t active = cpu.read(meta_, kActiveReaders) - 1;
  cpu.write(meta_, kActiveReaders, active);
  if (active == 0) {
    // Close the batch so later readers start a fresh ticket, then hand on.
    if (cpu.read(meta_, kTailIsRead) != 0 &&
        cpu.read(meta_, kTailTicket) == cpu.read(meta_, kServing)) {
      cpu.write(meta_, kTailIsRead, 0);
    }
    advance(cpu);
  }
  unlock_meta(cpu);
}

void TicketRwLock::do_acquire_write(machine::Cpu& cpu) {
  lock_meta(cpu);
  const std::uint32_t my_ticket = cpu.read(meta_, kNextTicket);
  cpu.write(meta_, kNextTicket, my_ticket + 1);
  cpu.write(meta_, kTailIsRead, 0);
  unlock_meta(cpu);
  spin_until(cpu, [&] { return serving_pub_.read(cpu, 0) >= my_ticket; });
}

void TicketRwLock::release_write(machine::Cpu& cpu) {
  traced_release(cpu, 0);
  lock_meta(cpu);
  advance(cpu);
  unlock_meta(cpu);
}

}  // namespace ksr::sync
