// Reproduces Table 1 + the CG curve of Fig. 8: Conjugate Gradient time,
// speedup, efficiency and Karp-Flatt serial fraction vs processors, plus
// the poststore ablation discussed in §3.3.1.
//
// Scaling: the paper ran n=14000 / nnz=2.03e6 against 0.25 MB + 32 MB
// caches. We scale problem and caches together (scaled_by(64)) so the
// working-set/cache ratios — which drive the poor small-P efficiency, the
// superunitary 8..16 region, and the 32-processor drop — are preserved.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  print_header("Conjugate Gradient scalability",
               "Table 1 and Fig. 8 (CG), Section 3.3.1");

  nas::CgConfig cfg;
  cfg.n = opt.quick ? 600 : 1750;
  cfg.nnz_per_row = opt.quick ? 24 : 72;  // ~126k nonzeros at default size
  cfg.iterations = opt.quick ? 3 : 6;
  const unsigned scale = 64;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 2, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};

  std::vector<std::pair<unsigned, double>> measured;
  std::uint64_t nnz = 0;
  for (unsigned p : procs) {
    machine::KsrMachine m(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const nas::CgResult r = run_cg(m, cfg);
    measured.emplace_back(p, r.seconds);
    nnz = r.nnz;
  }

  TextTable t({"Processors", "Time (s)", "Speedup", "Efficiency",
               "Serial Fraction"});
  for (const auto& row : study::scaling_rows(measured)) {
    t.add_row({std::to_string(row.p), TextTable::num(row.seconds, 5),
               TextTable::num(row.speedup, 5),
               row.p == 1 ? "-" : TextTable::num(row.efficiency, 3),
               row.p == 1 ? "-" : TextTable::num(row.serial_fraction, 6)});
  }
  std::cout << "datasize n = " << cfg.n << ", nonzeros = " << nnz
            << ", machine caches scaled by 1/" << scale << "\n";
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations (Table 1): modest efficiency up to 4 procs\n"
           "(working set exceeds per-cell caches), superunitary steps in the\n"
           "8..16 region once partitions fit in the local caches, and a drop\n"
           "at 32 as the serial section's remote references grow.\n";
  }

  // ---- Poststore ablation (§3.3.1): propagate q-slices as produced so the
  // serial section does not stall fetching them.
  std::cout << "\n--- poststore ablation ---\n";
  TextTable pt({"Processors", "no poststore (s)", "poststore (s)", "gain"});
  for (unsigned p : opt.quick ? std::vector<unsigned>{8}
                              : std::vector<unsigned>{4, 8, 16, 32}) {
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double base = run_cg(m1, cfg).seconds;
    nas::CgConfig c2 = cfg;
    c2.use_poststore = true;
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double post = run_cg(m2, c2).seconds;
    pt.add_row({std::to_string(p), TextTable::num(base, 5),
                TextTable::num(post, 5),
                TextTable::num((1.0 - post / base) * 100.0, 2) + "%"});
  }
  if (opt.csv) {
    pt.print_csv();
  } else {
    pt.print();
    std::cout << "\nPaper: poststore improves CG (~3% at 16 processors), with\n"
                 "smaller gains at high processor counts as the simultaneous\n"
                 "poststores approach ring saturation.\n";
  }

  // ---- Prefetch ablation: the implementation pulls the rewritten p vector
  // ahead of each mat-vec ("prefetch ... used quite extensively", §4).
  std::cout << "\n--- prefetch ablation ---\n";
  TextTable ft({"Processors", "prefetch (s)", "no prefetch (s)", "gain"});
  for (unsigned p : opt.quick ? std::vector<unsigned>{8}
                              : std::vector<unsigned>{4, 8, 16, 32}) {
    machine::KsrMachine m1(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double with_pf = run_cg(m1, cfg).seconds;
    nas::CgConfig c2 = cfg;
    c2.use_prefetch = false;
    machine::KsrMachine m2(machine::MachineConfig::ksr1(p).scaled_by(scale));
    const double without = run_cg(m2, c2).seconds;
    ft.add_row({std::to_string(p), TextTable::num(with_pf, 5),
                TextTable::num(without, 5),
                TextTable::num((1.0 - with_pf / without) * 100.0, 2) + "%"});
  }
  if (opt.csv) {
    ft.print_csv();
  } else {
    ft.print();
  }
  return 0;
}
