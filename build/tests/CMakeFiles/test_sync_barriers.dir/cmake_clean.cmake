file(REMOVE_RECURSE
  "CMakeFiles/test_sync_barriers.dir/test_sync_barriers.cpp.o"
  "CMakeFiles/test_sync_barriers.dir/test_sync_barriers.cpp.o.d"
  "test_sync_barriers"
  "test_sync_barriers.pdb"
  "test_sync_barriers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_barriers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
