// Event-tracer tests: ring and coherence activity is captured with the
// right categories, timestamps are monotone, CSV renders, capacity bounds
// hold, and an untraced machine behaves identically (timing unchanged).
#include <gtest/gtest.h>

#include <sstream>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sim/trace.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr {
namespace {

using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

TEST(Trace, CapturesRingAndCoherenceEvents) {
  KsrMachine m(MachineConfig::ksr1(2));
  sim::Tracer tracer;
  m.attach_tracer(&tracer);
  auto arr = m.alloc<int>("a", 16);
  auto flag = m.alloc<int>("f", 1);
  m.run([&](Cpu& cpu) {
    if (cpu.id() == 0) {
      cpu.write(arr, 0, 1);
      cpu.write(flag, 0, 1);
    } else {
      while (cpu.read(flag, 0) == 0) cpu.work(10);
      (void)cpu.read(arr, 0);   // remote fetch: ring + grant-shared
      cpu.write(arr, 0, 2);     // upgrade: invalidate at cell 0
    }
  });
  EXPECT_GT(tracer.count("ring", "inject"), 0u);
  EXPECT_EQ(tracer.count("ring", "inject"), tracer.count("ring", "deliver"));
  EXPECT_GT(tracer.count("coherence", "grant-shared"), 0u);
  EXPECT_GT(tracer.count("coherence", "grant-exclusive"), 0u);
  EXPECT_GT(tracer.count("coherence", "invalidate"), 0u);
}

TEST(Trace, TimestampsAreMonotone) {
  KsrMachine m(MachineConfig::ksr1(4));
  sim::Tracer tracer;
  m.attach_tracer(&tracer);
  auto barrier = sync::make_barrier(m, sync::BarrierKind::kTournamentM);
  m.run([&](Cpu& cpu) {
    for (int e = 0; e < 3; ++e) barrier->arrive(cpu);
  });
  ASSERT_GT(tracer.size(), 0u);
  for (std::size_t i = 1; i < tracer.events().size(); ++i) {
    EXPECT_GE(tracer.events()[i].t, tracer.events()[i - 1].t);
  }
}

TEST(Trace, AtomicContentionProducesNacks) {
  KsrMachine m(MachineConfig::ksr1(4));
  sim::Tracer tracer;
  m.attach_tracer(&tracer);
  auto lock = m.alloc<int>("lock", 1);
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < 5; ++i) {
      cpu.get_subpage(lock.addr(0));
      cpu.work(2000);
      cpu.release_subpage(lock.addr(0));
    }
  });
  EXPECT_GT(tracer.count("coherence", "grant-atomic"), 0u);
  EXPECT_GT(tracer.count("coherence", "nack"), 0u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  sim::Tracer tracer;
  tracer.log(5, "ring", "inject", 1, 2, 3);
  std::ostringstream os;
  tracer.write_csv(os);
  EXPECT_EQ(os.str(),
            "time_ns,category,event,subject,actor,detail\n"
            "5,ring,inject,1,2,3\n");
}

TEST(Trace, CapacityBound) {
  sim::Tracer tracer;
  tracer.set_capacity(10);
  for (int i = 0; i < 100; ++i) tracer.log(1, "x", "y", 0, 0);
  EXPECT_EQ(tracer.size(), 10u);
}

TEST(Trace, TracingDoesNotPerturbTiming) {
  auto run_once = [](bool traced) {
    KsrMachine m(MachineConfig::ksr1(4));
    sim::Tracer tracer;
    if (traced) m.attach_tracer(&tracer);
    auto arr = m.alloc<int>("a", 1024);
    auto res = m.run([&](Cpu& cpu) {
      for (unsigned i = cpu.id(); i < 1024; i += cpu.nproc()) {
        cpu.write(arr, i, 1);
      }
      for (unsigned i = 0; i < 1024; i += 32) (void)cpu.read(arr, i);
    });
    return res.seconds;
  };
  EXPECT_DOUBLE_EQ(run_once(false), run_once(true));
}

}  // namespace
}  // namespace ksr
