// BT application correctness: checksum invariance across processor counts
// and prefetch settings; scaling sanity.
#include <gtest/gtest.h>

#include <cmath>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/bt.hpp"

namespace ksr::nas {
namespace {

using machine::KsrMachine;
using machine::MachineConfig;

TEST(Bt, ChecksumInvariantAcrossProcsAndPrefetch) {
  BtConfig cfg;
  cfg.n = 6;
  cfg.iterations = 2;
  double expect = 0;
  {
    KsrMachine m(MachineConfig::ksr1(1).scaled_by(16));
    expect = run_bt(m, cfg).checksum;
  }
  EXPECT_TRUE(std::isfinite(expect));
  for (unsigned p : {2u, 3u, 6u}) {
    for (bool pf : {false, true}) {
      BtConfig c = cfg;
      c.use_prefetch = pf;
      KsrMachine m(MachineConfig::ksr1(p).scaled_by(16));
      EXPECT_NEAR(run_bt(m, c).checksum, expect, 1e-9)
          << "p=" << p << " prefetch=" << pf;
    }
  }
}

TEST(Bt, ScalesWithProcessors) {
  BtConfig cfg;
  cfg.n = 8;
  cfg.iterations = 1;
  auto t_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p).scaled_by(16));
    return run_bt(m, cfg).seconds_per_iteration;
  };
  const double t1 = t_at(1);
  const double t8 = t_at(8);
  EXPECT_GT(t1 / t8, 4.0);  // compute-dense: should scale well
}

}  // namespace
}  // namespace ksr::nas
