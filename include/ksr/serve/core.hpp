#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "ksr/host/sweep_runner.hpp"
#include "ksr/serve/cache.hpp"
#include "ksr/serve/job.hpp"

// The serving engine shared by the `ksrsim serve` daemon and the in-process
// `ksrsim campaign` runner (docs/SERVING.md): validate → cache probe →
// in-flight dedup → execute → store. Batches dispatch through the existing
// host::SweepRunner pool; single submissions execute on the calling thread
// (daemon connection threads already parallelize across clients). Identical
// jobs submitted concurrently dedup to ONE execution — later arrivals wait
// on the first and receive the same bytes.
namespace ksr::serve {

class ServeCore {
 public:
  struct Options {
    std::string store_dir;     // empty = in-memory cache only
    unsigned jobs = 0;         // SweepRunner width for batches; 0 = one/core
    unsigned sim_threads = 1;  // engine threads per simulation (policy only)
    std::uint32_t code_version = kCodeVersion;  // overridable for tests
  };

  struct Response {
    bool ok = false;
    bool cached = false;  // true for cache hits AND in-flight dedup waits
    std::string key;      // 16-hex cache key
    std::string error;    // when !ok
    std::string result;   // deterministic result JSON bytes
    std::uint64_t wall_ms = 0;  // this submission's wall clock (not cached)
  };

  explicit ServeCore(const Options& opt);

  /// Submit one job. Thread-safe; blocks until the result is available.
  [[nodiscard]] Response submit(const JobSpec& spec);

  /// Submit a batch through the SweepRunner pool; responses in submission
  /// order. Batches serialize against each other (one pool).
  [[nodiscard]] std::vector<Response> submit_batch(
      const std::vector<JobSpec>& specs);

  struct Counters {
    ResultCache::Stats cache;
    std::uint64_t executed = 0;       // jobs that actually simulated
    std::uint64_t inflight_dedup = 0; // submissions served by a peer's run
    std::uint64_t failures = 0;
  };
  [[nodiscard]] Counters counters() const;
  [[nodiscard]] Json stats_json() const;
  /// Counter export in the obs metrics CSV shape (counter,value rows) —
  /// `ksrsim serve --metrics-csv FILE` dumps this at shutdown.
  void write_stats_csv(std::ostream& os) const;

  [[nodiscard]] const Options& options() const noexcept { return opt_; }

 private:
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Response resp;
  };

  Options opt_;
  ResultCache cache_;
  host::SweepRunner runner_;
  std::mutex batch_mu_;  // SweepRunner batches are not reentrant
  mutable std::mutex inflight_mu_;  // guards inflight_ and the counters below
  std::unordered_map<std::uint64_t, std::shared_ptr<Inflight>> inflight_;
  std::uint64_t executed_ = 0;
  std::uint64_t inflight_dedup_ = 0;
  std::uint64_t failures_ = 0;
};

}  // namespace ksr::serve
