# Empty dependencies file for bench_table2_is.
# This may be replaced when dependencies are built.
