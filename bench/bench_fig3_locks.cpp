// Reproduces Fig. 3 ("Performance of locks"): time for each processor to
// complete a fixed number of lock operations under the paper's synthetic
// workload — hardware exclusive lock vs. the software read-write ticket
// lock at varying read-sharing percentages.
//
// Workload (paper footnote 4): each processor repeatedly accesses data in
// read or write mode with a delay of 10000 local operations between
// successive lock requests; the lock is held for 3000 local operations.
//
// Each (P, variant) cell is an independent simulation — one SweepRunner job
// per cell, merged in submission order.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/sync/locks.hpp"

namespace {

using namespace ksr;         // NOLINT
using namespace ksr::bench;  // NOLINT
using machine::Cpu;
using machine::KsrMachine;
using machine::MachineConfig;

constexpr std::uint64_t kHoldOps = 3000;   // local ops while holding
constexpr std::uint64_t kDelayOps = 10000; // local ops between requests
constexpr std::uint64_t kCyclesPerOp = 2;

struct Run {
  double seconds = 0.0;
  obs::JobObs obs;
};

Run run_exclusive(const obs::Session& session, unsigned nproc, int ops) {
  KsrMachine m(MachineConfig::ksr1(nproc));
  Run r;
  r.obs = session.job();
  r.obs.attach(m);
  sync::HardwareLock lock(m);
  double t = 0;
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < ops; ++i) {
      lock.acquire(cpu);
      cpu.work(kHoldOps * kCyclesPerOp);
      lock.release(cpu);
      cpu.work(kDelayOps * kCyclesPerOp);
    }
    if (cpu.seconds() > t) t = cpu.seconds();
  });
  r.obs.finish();
  r.seconds = t;
  return r;
}

Run run_rw(const obs::Session& session, unsigned nproc, int ops,
           unsigned read_percent) {
  KsrMachine m(MachineConfig::ksr1(nproc));
  Run r;
  r.obs = session.job();
  r.obs.attach(m);
  sync::TicketRwLock lock(m);
  double t = 0;
  m.run([&](Cpu& cpu) {
    for (int i = 0; i < ops; ++i) {
      const bool read = cpu.rng().below(100) < read_percent;
      if (read) {
        lock.acquire_read(cpu);
        cpu.work(kHoldOps * kCyclesPerOp);
        lock.release_read(cpu);
      } else {
        lock.acquire_write(cpu);
        cpu.work(kHoldOps * kCyclesPerOp);
        lock.release_write(cpu);
      }
      cpu.work(kDelayOps * kCyclesPerOp);
    }
    if (cpu.seconds() > t) t = cpu.seconds();
  });
  r.obs.finish();
  r.seconds = t;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "fig3_locks");
  SweepRunner runner(opt.jobs);
  // Paper: "for 500 operations". Scaled default keeps the event count sane;
  // --full uses the paper's 500.
  const int ops = opt.full ? 500 : (opt.quick ? 25 : 40);

  print_header("Lock performance (" + std::to_string(ops) +
                   " operations per processor)",
               "Fig. 3, Section 3.2.1");

  TextTable t({"procs", "exclusive (s)", "rw 0% rd (s)", "rw 20% rd (s)",
               "rw 40% rd (s)", "rw 60% rd (s)", "rw 80% rd (s)",
               "rw 100% rd (s)"});
  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{1, 4, 8}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
  const std::vector<unsigned> read_pcts{0, 20, 40, 60, 80, 100};

  std::vector<std::function<Run()>> jobs;
  jobs.reserve(procs.size() * (1 + read_pcts.size()));
  for (unsigned p : procs) {
    jobs.emplace_back(
        [p, ops, &session] { return run_exclusive(session, p, ops); });
    for (unsigned rd : read_pcts) {
      jobs.emplace_back(
          [p, ops, rd, &session] { return run_rw(session, p, ops, rd); });
    }
  }
  std::vector<Run> cells = runner.run(jobs);

  std::size_t j = 0;
  for (unsigned p : procs) {
    std::vector<std::string> row{std::to_string(p)};
    if (session.active()) {
      session.collect(std::move(cells[j].obs),
                      "exclusive p=" + std::to_string(p));
    }
    row.push_back(TextTable::num(cells[j++].seconds, 4));
    for (unsigned rd : read_pcts) {
      if (session.active()) {
        session.collect(std::move(cells[j].obs),
                        "rw" + std::to_string(rd) + " p=" + std::to_string(p));
      }
      row.push_back(TextTable::num(cells[j++].seconds, 4));
    }
    t.add_row(row);
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nPaper expectations: exclusive-lock time grows linearly with\n"
           "processors; the software read-write lock improves steadily with\n"
           "the read-sharing percentage and beats the hardware lock for\n"
           "read-heavy mixes (readers share the lock; writers serialize).\n";
  }
  return 0;
}
