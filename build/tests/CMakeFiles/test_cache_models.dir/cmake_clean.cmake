file(REMOVE_RECURSE
  "CMakeFiles/test_cache_models.dir/test_cache_models.cpp.o"
  "CMakeFiles/test_cache_models.dir/test_cache_models.cpp.o.d"
  "test_cache_models"
  "test_cache_models.pdb"
  "test_cache_models[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cache_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
