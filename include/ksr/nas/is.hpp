#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ksr/machine/machine.hpp"
#include "ksr/sync/barrier.hpp"
#include "ksr/sync/padded.hpp"

// NAS Integer Sort (IS) kernel (paper §3.3.2, Table 2, Figs. 8 & 9).
//
// Bucket-sort ranking: count keys per bucket, prefix-sum the counts, assign
// each key its rank. The parallel algorithm is exactly the seven phases of
// the paper's Fig. 9:
//
//  1. each processor counts its key chunk into a *replicated* local bucket
//     array (keyden_t) — no synchronization;
//  2. each processor accumulates its portion of the global bucket counts
//     (keyden) from all processors' local counts — the all-to-all that
//     loads the ring;
//  3. each processor prefix-sums its portion of keyden;
//  4. processor P1 serially combines the per-processor partial maxima
//     (tmp_sum) — the serial section that grows with P;
//  5. each processor adds tmp_sum[i-1] into its portion;
//  6. each processor atomically copies keyden into its local keyden_t and
//     decrements it — one sub-page locked at a time, so access pipelines;
//  7. each processor ranks its keys from its local keyden_t.
namespace ksr::nas {

struct IsConfig {
  unsigned log2_keys = 15;     // paper: 2^23 (machine scaled accordingly)
  unsigned log2_buckets = 9;   // paper: ~2^19
  std::uint64_t seed = 1618033;
  std::uint64_t work_per_key = 6;  // index arithmetic per key visit
  // The paper's implementation "used [prefetch] quite extensively": pull the
  // other processors' local counts ahead of phase 2's all-to-all reduction.
  bool use_prefetch = true;
  // Start each processor's keyden portion on a fresh sub-page. The default
  // (false) keeps the paper's layout, where neighbouring portions share the
  // sub-page at their boundary — false sharing whenever the portion size is
  // not a multiple of 32 buckets (e.g. any non-power-of-two P).
  bool pad_buckets = false;
};

struct IsResult {
  double seconds = 0.0;      // timed region (slowest cell)
  bool ranks_valid = false;  // ranks form a permutation that sorts the keys
  double serial_phase_seconds = 0.0;  // phase 4 on cell 0
};

/// Run IS on the machine; all cells participate.
IsResult run_is(machine::Machine& m, const IsConfig& cfg);

/// The key sequence the kernel sorts (exposed for tests).
[[nodiscard]] std::vector<std::uint32_t> make_keys(const IsConfig& cfg);

/// Split-phase IS for checkpoint/warm-start flows (docs/CHECKPOINT.md).
///
/// The same kernel as run_is, split at the warm-up barrier: the untimed
/// warm-up (key distribution + count zeroing) is one Machine::run(), the
/// seven timed ranking phases are a second run(). Between the two the
/// machine is quiescent, so a checkpoint can be captured there — or a fresh
/// machine restored from one — and the ranking phases then replay
/// bit-exactly in either flow. Because the split spawns two fibers per cell
/// and uses two barrier instances, its events_dispatched fingerprint is NOT
/// comparable with run_is's single-run fingerprint; compare split runs only
/// with other split runs.
///
///   cold:  IsSplit is(m, cfg);  is.run_warmup();   auto r = is.run_ranked();
///   fork:  IsSplit is(m, cfg);  m.restore(image);  auto r = is.run_ranked();
///
/// The constructor performs the complete allocation sequence — including the
/// warm-up barrier, even though a forked machine never arrives at it — so
/// the forked machine's heap layout matches the donor's at capture time.
/// run_ranked() builds its own fresh barrier after the checkpoint boundary
/// in both flows (a barrier holds host-side per-cpu episode state, so the
/// two flows must both start the ranking phases on a brand-new instance).
class IsSplit {
 public:
  IsSplit(machine::Machine& m, const IsConfig& cfg);

  /// Phase A (untimed): distribute keys, zero the count arrays. Leaves the
  /// machine at the quiescent point where checkpoints are captured.
  void run_warmup();

  /// Phase B (timed): the paper's seven ranking phases + host validation.
  [[nodiscard]] IsResult run_ranked();

 private:
  machine::Machine& m_;
  IsConfig cfg_;
  std::size_t n_ = 0;
  std::size_t nbuckets_ = 0;
  std::size_t chunk_ints_ = 0;
  std::vector<std::uint32_t> host_keys_;
  std::vector<std::size_t> slot_;
  mem::SharedArray<std::uint32_t> keys_;
  mem::SharedArray<std::uint32_t> rank_;
  mem::SharedArray<std::uint32_t> keyden_;
  mem::SharedArray<std::uint32_t> keyden_t_;
  sync::Padded<std::uint32_t> tmp_sum_;
  std::unique_ptr<sync::Barrier> warm_barrier_;
};

}  // namespace ksr::nas
