#include "ksr/serve/cache.hpp"

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "ksr/ckpt/checkpoint.hpp"

namespace ksr::serve {

namespace {
constexpr char kHeaderPrefix[] = "ksr-serve-cache v1 key=";
}

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir)) {
  if (dir_.empty()) return;
  if (::mkdir(dir_.c_str(), 0777) != 0 && errno != EEXIST) {
    throw std::runtime_error("serve: cannot create store directory '" + dir_ +
                             "': " + std::strerror(errno));
  }
}

std::string ResultCache::path_of(const CacheKey& key) const {
  return dir_ + "/" + key.hex() + ".result";
}

bool ResultCache::lookup(const CacheKey& key, const std::string& canonical,
                         std::string* result) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    const auto it = mem_.find(key.value);
    if (it != mem_.end()) {
      if (it->second.canonical == canonical) {
        *result = it->second.result;
        ++stats_.hits;
        return true;
      }
      // Same 64-bit key, different spec: a genuine FNV collision. Refuse
      // to alias; both specs will simply re-run.
      ++stats_.load_errors;
      ++stats_.misses;
      return false;
    }
  }
  if (dir_.empty()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    return false;
  }
  // Disk probe outside the lock (one open+read; worst case two threads race
  // to load the same entry, both succeed identically).
  const std::string path = path_of(key);
  std::ifstream is(path, std::ios::binary);
  if (!is.is_open()) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    return false;
  }
  std::string header;
  std::string canon;
  std::string bytes;
  const bool shaped = static_cast<bool>(std::getline(is, header)) &&
                      static_cast<bool>(std::getline(is, canon)) &&
                      static_cast<bool>(std::getline(is, bytes));
  const bool valid = shaped && header == kHeaderPrefix + key.hex() &&
                     canon == canonical;
  std::lock_guard<std::mutex> lk(mu_);
  if (!valid) {
    // Truncated, hand-edited, or written against a colliding spec: count it
    // and fall through to a re-run (which will overwrite the entry).
    ++stats_.load_errors;
    ++stats_.misses;
    return false;
  }
  mem_[key.value] = Entry{canonical, bytes};
  *result = std::move(bytes);
  ++stats_.hits;
  return true;
}

void ResultCache::store(const CacheKey& key, const std::string& canonical,
                        const std::string& result) {
  if (!dir_.empty()) {
    std::string blob;
    blob.reserve(sizeof(kHeaderPrefix) + canonical.size() + result.size() + 18);
    blob += kHeaderPrefix;
    blob += key.hex();
    blob += '\n';
    blob += canonical;
    blob += '\n';
    blob += result;
    blob += '\n';
    try {
      ckpt::atomic_write_file(path_of(key), blob);
    } catch (const std::exception& e) {
      // A store failure (disk full, directory removed) only loses
      // memoization across restarts; the in-memory entry still serves this
      // process. Warn with the path, don't fail the job that just ran.
      std::cerr << "[serve] warning: result store write failed: " << e.what()
                << "\n";
    }
  }
  std::lock_guard<std::mutex> lk(mu_);
  mem_[key.value] = Entry{canonical, result};
  ++stats_.stores;
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

}  // namespace ksr::serve
