file(REMOVE_RECURSE
  "CMakeFiles/ksr_machine.dir/butterfly_machine.cpp.o"
  "CMakeFiles/ksr_machine.dir/butterfly_machine.cpp.o.d"
  "CMakeFiles/ksr_machine.dir/coherent_machine.cpp.o"
  "CMakeFiles/ksr_machine.dir/coherent_machine.cpp.o.d"
  "CMakeFiles/ksr_machine.dir/ksr_machine.cpp.o"
  "CMakeFiles/ksr_machine.dir/ksr_machine.cpp.o.d"
  "CMakeFiles/ksr_machine.dir/machine.cpp.o"
  "CMakeFiles/ksr_machine.dir/machine.cpp.o.d"
  "libksr_machine.a"
  "libksr_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksr_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
