#include "ksr/net/ring.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace ksr::net {

SlottedRing::SlottedRing(sim::Engine& engine, const Config& cfg, std::string name)
    : engine_(engine), cfg_(cfg), name_(std::move(name)) {
  if (cfg_.positions == 0 || cfg_.subrings == 0 || cfg_.hop_ns == 0) {
    throw std::invalid_argument("SlottedRing: bad config");
  }
  if (cfg_.slots_per_subring == 0) {
    // A zero-slot sub-ring leaves coord_to_slot all -1 and next_pass_delta
    // all 0, so the first inject() would re-poll forever at the same
    // simulated time.
    throw std::invalid_argument(
        "SlottedRing: slots_per_subring must be > 0");
  }
  const unsigned n = cfg_.positions;
  const unsigned s = std::min(cfg_.slots_per_subring, n);
  subrings_.resize(cfg_.subrings);
  for (auto& sr : subrings_) {
    sr.coord_to_slot.assign(n, -1);
    // Equally spaced slot coordinates around the ring, rotated by the
    // configured phase (0 = paper layout).
    for (unsigned i = 0; i < s; ++i) {
      const unsigned coord = static_cast<unsigned>(
          ((static_cast<std::uint64_t>(i) * n) / s + cfg_.phase) % n);
      if (sr.coord_to_slot[coord] < 0) {
        sr.coord_to_slot[coord] = static_cast<std::int32_t>(i);
      }
    }
    sr.occupied.assign(s, 0);
    sr.waiting.resize(n);
    // Closed-form "ticks until the next slot passes": in the rotating frame
    // the coordinate facing a position decreases by one each tick, so from
    // coordinate c the next slot passes after the backward distance to the
    // nearest slot coordinate. One table lookup replaces the O(n) probe the
    // polled model did on every failed attempt.
    sr.next_pass_delta.assign(n, 0);
    for (unsigned c = 0; c < n; ++c) {
      for (unsigned d = 1; d <= n; ++d) {
        if (sr.coord_to_slot[(c + n - (d % n)) % n] >= 0) {
          sr.next_pass_delta[c] = d;
          break;
        }
      }
    }
  }
}

void SlottedRing::inject(unsigned src_pos, unsigned subring, Done done) {
  if (src_pos >= cfg_.positions || subring >= cfg_.subrings) {
    throw std::out_of_range("SlottedRing::inject: bad position/subring");
  }
  auto& sr = subrings_[subring];
  sr.waiting[src_pos].push_back(Pending{std::move(done), engine_.now(), false});
  Pending& head = sr.waiting[src_pos].front();
  if (!head.polling) {
    head.polling = true;
    const std::uint64_t tick = tick_of(engine_.now());
    engine_.at(tick * cfg_.hop_ns,
               [this, subring, src_pos] { try_head(subring, src_pos); });
  }
}

void SlottedRing::try_head(unsigned subring, unsigned pos) {
  auto& sr = subrings_[subring];
  auto& queue = sr.waiting[pos];
  if (queue.empty()) return;
  queue.front().polling = false;

  const unsigned n = cfg_.positions;
  const std::uint64_t tick = engine_.now() / cfg_.hop_ns;
  const unsigned coord = (pos + n - static_cast<unsigned>(tick % n)) % n;
  const std::int32_t slot = sr.coord_to_slot[coord];

  if (slot >= 0 && sr.occupied[static_cast<std::size_t>(slot)] == 0) {
    sr.occupied[static_cast<std::size_t>(slot)] = 1;
    Pending claimed = std::move(queue.front());
    queue.pop_front();
    const sim::Duration wait = engine_.now() - claimed.enqueued;
    ++stats_.packets;
    stats_.total_inject_wait_ns += wait;
    stats_.busy_slot_ns +=
        stats_.in_flight * (engine_.now() - stats_.last_change_ns);
    stats_.last_change_ns = engine_.now();
    ++stats_.in_flight;
    stats_.max_in_flight = std::max(stats_.max_in_flight, stats_.in_flight);
    if (tracer_ != nullptr) {
      tracer_->log(engine_.now(), obs::kCatRing, obs::kEvInject,
                   static_cast<std::uint64_t>(slot), pos,
                   static_cast<std::int64_t>(wait));
    }
    engine_.in(circulation_ns(),
               [this, subring, slot, pos, done = std::move(claimed.done),
                wait] {
                 subrings_[subring].occupied[static_cast<std::size_t>(slot)] = 0;
                 stats_.busy_slot_ns +=
                     stats_.in_flight * (engine_.now() - stats_.last_change_ns);
                 stats_.last_change_ns = engine_.now();
                 --stats_.in_flight;
                 if (tracer_ != nullptr) {
                   tracer_->log(engine_.now(), obs::kCatRing, obs::kEvDeliver,
                                static_cast<std::uint64_t>(slot), pos);
                 }
                 done(wait);
               });
  } else {
    ++stats_.retries;
  }

  if (!queue.empty() && !queue.front().polling) {
    queue.front().polling = true;
    const std::uint64_t next = tick + sr.next_pass_delta[coord];
    engine_.at(next * cfg_.hop_ns,
               [this, subring, pos] { try_head(subring, pos); });
  }
}

bool SlottedRing::find_stranded_head(unsigned* subring,
                                     unsigned* pos) const noexcept {
  for (unsigned s = 0; s < subrings_.size(); ++s) {
    const SubRing& sr = subrings_[s];
    for (unsigned p = 0; p < sr.waiting.size(); ++p) {
      const auto& q = sr.waiting[p];
      if (!q.empty() && !q.front().polling) {
        *subring = s;
        *pos = p;
        return true;
      }
    }
  }
  return false;
}

}  // namespace ksr::net
