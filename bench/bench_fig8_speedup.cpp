// Reproduces Fig. 8 ("Speedup for CG and IS"): the two speedup curves on
// one axis, P = 1..32. (The underlying runs are the Table 1 / Table 2
// configurations; this binary prints just the figure's two series.)
//
// `--scale-out` switches to the ring-of-rings extrapolation instead: the
// same two kernels on sharded-directory machines of 128, 512 and 1088
// cells (34 leaf rings x 32 cells is the largest hierarchy the ARD ring
// admits), partitioned into up to four domains so --sim-threads N runs
// them as a real multi-domain parallel simulation (docs/PARALLEL.md).
// The paper stops at 32 processors; these rows ask what its Fig. 8 curves
// would have done at full machine scale.
//
// One SweepRunner job per (kernel, P) run, merged in submission order.
//
// `--warm-start` / `--cold-start` switch the IS series to the split-phase
// kernel (docs/CHECKPOINT.md): each P runs IS twice, prefetch on and off.
// The two variants share an identical warm-up, so under --warm-start the
// no-prefetch point forks from a checkpoint captured after the prefetch
// point's warm-up instead of re-simulating it; --cold-start runs the same
// split-phase points without forking. The two modes print byte-identical
// tables (restore is bit-exact and preserves the events_dispatched
// counter); --warm-start additionally reports the skipped warm-up wall time
// as `warm_saved_ms=` on the [host] line. `--checkpoint-at P` writes each
// donor checkpoint to <P>.p<procs>.ckpt; `--restore-from P` re-uses them,
// skipping even the donor warm-ups.
#include "bench_common.hpp"
#include "ksr/ckpt/checkpoint.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/is.hpp"

namespace {

struct Run {
  double seconds = 0.0;
  double seconds_np = 0.0;  // split-phase modes: the no-prefetch variant
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  std::uint64_t saved_ms = 0;  // warm-up wall time a fork skipped
  // Scale-out point telemetry (--scale-out only): fuels the per-point
  // `[host] point` stderr lines that report.py folds into BENCH_host.json.
  std::uint64_t barrier_wait_ppm = 0;   // host wall clock (self-profiler)
  std::uint64_t ring_util_ppm_l0 = 0;   // peak leaf-ring slot utilization
  std::uint64_t ring_util_ppm_l1 = 0;   // level-1 ring (0 when analytic)
  int hot_shard = -1;                   // hottest home leaf; -1 = no shards
  std::uint64_t hot_shard_requests = 0;
  ksr::obs::JobObs obs;
  ksr::obs::JobObs obs_np;
};

// Snapshot the integer topology telemetry while the machine is still alive
// (jobs destroy their machine before merging). The ring-utilization and
// shard numbers are simulated/deterministic; barrier_wait_ppm is the host
// self-profiler's wall-clock fraction and varies run to run — all of it
// stays on stderr, never in the byte-stable tables.
void capture_point(Run& r, ksr::machine::KsrMachine& m) {
  ksr::obs::topo::Snapshot s;
  m.topo_snapshot(s);
  r.ring_util_ppm_l0 = ksr::obs::topo::peak_util_ppm(s, 0);
  r.ring_util_ppm_l1 = ksr::obs::topo::peak_util_ppm(s, 1);
  if (const ksr::obs::topo::ShardUse* h = ksr::obs::topo::hottest_shard(s)) {
    r.hot_shard = static_cast<int>(h->home_leaf);
    r.hot_shard_requests = h->requests;
  }
  r.barrier_wait_ppm = m.parallel_engine().host_profile().barrier_wait_ppm();
}

// Partition width for the scale-out rows: whole leaf rings, at most four
// domains (cells_per_domain = 0 leaves small machines single-domain).
unsigned scale_out_cpd(unsigned procs) {
  if (procs < 128) return 0;
  const unsigned quarter = (procs + 3) / 4;
  return 32 * ((quarter + 31) / 32);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  bool scale_out = false;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::string(argv[i]) == "--scale-out") {
      scale_out = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  const BenchOptions opt =
      BenchOptions::parse(static_cast<int>(args.size()), args.data());
  if (opt.warm_start && opt.cold_start) {
    std::cerr << "bench_fig8_speedup: --warm-start and --cold-start are "
                 "mutually exclusive\n";
    return 1;
  }
  const bool split_is = opt.warm_start || opt.cold_start;
  if (!opt.warm_start &&
      (!opt.checkpoint_at.empty() || !opt.restore_from.empty())) {
    std::cerr << "warning: --checkpoint-at/--restore-from need --warm-start; "
                 "ignored\n";
  }
  HostMetrics host(scale_out ? "fig8_scaleout" : "fig8_speedup");
  obs::Session session = make_obs_session(
      opt, scale_out ? "fig8_scaleout" : "fig8_speedup");
  SweepRunner runner(opt.jobs);
  host.set_jobs(runner.jobs());
  host.set_sim_threads(opt.sim_threads);
  print_header(scale_out ? "Speedup for CG and IS at 128-1088 cells"
                         : "Speedup for CG and IS",
               scale_out ? "Fig. 8 extrapolated past the paper's 32 cells"
                         : "Fig. 8, Section 3.3");

  nas::CgConfig cg;
  cg.n = opt.quick ? 600 : 1750;
  cg.nnz_per_row = opt.quick ? 24 : 72;
  cg.iterations = opt.quick ? 2 : 4;
  nas::IsConfig is;
  is.log2_keys = opt.quick ? 13 : 16;
  is.log2_buckets = opt.quick ? 9 : 11;

  const std::vector<unsigned> procs =
      scale_out ? (opt.quick ? std::vector<unsigned>{1, 128}
                             : std::vector<unsigned>{1, 128, 512, 1088})
                : (opt.quick ? std::vector<unsigned>{1, 4, 16}
                             : std::vector<unsigned>{1, 2, 4, 8, 16, 24, 32});

  const unsigned sim_threads = opt.sim_threads;
  auto make_cfg = [scale_out, sim_threads](unsigned p) {
    machine::MachineConfig c = machine::MachineConfig::ksr1(p)
                                   .scaled_by(64)
                                   .with_sim_threads(sim_threads);
    if (scale_out) c = c.with_cells_per_domain(scale_out_cpd(p));
    return c;
  };

  std::vector<std::function<Run()>> jobs;
  jobs.reserve(2 * procs.size());
  for (unsigned p : procs) {
    jobs.emplace_back([p, cg, scale_out, &session, &make_cfg] {
      machine::KsrMachine m(make_cfg(p));
      Run r;
      r.obs = session.job();
      r.obs.attach(m);
      r.seconds = run_cg(m, cg).seconds;
      r.obs.finish();
      r.events = m.engine().events_dispatched();
      r.quanta = m.parallel_engine().quanta();
      if (scale_out) capture_point(r, m);
      return r;
    });
    if (!split_is) {
      jobs.emplace_back([p, is, scale_out, &session, &make_cfg] {
        machine::KsrMachine m(make_cfg(p));
        Run r;
        r.obs = session.job();
        r.obs.attach(m);
        r.seconds = run_is(m, is).seconds;
        r.obs.finish();
        r.events = m.engine().events_dispatched();
        r.quanta = m.parallel_engine().quanta();
        if (scale_out) capture_point(r, m);
        return r;
      });
      continue;
    }
    // Split-phase IS: prefetch on and off share one warm-up. Under
    // --warm-start the second variant (and, with --restore-from, both)
    // forks from the donor checkpoint; under --cold-start each variant
    // re-simulates its own warm-up. Restore preserves the donor's event
    // and quantum counters, so the two modes report identical totals.
    jobs.emplace_back([p, is, scale_out, &session, &make_cfg, &opt] {
      nas::IsConfig is_np = is;
      is_np.use_prefetch = false;
      const std::string suffix = ".p" + std::to_string(p) + ".ckpt";
      const std::string save_path =
          opt.checkpoint_at.empty() ? "" : opt.checkpoint_at + suffix;
      const std::string load_path =
          opt.restore_from.empty() ? "" : opt.restore_from + suffix;
      Run r;
      std::vector<std::byte> image;
      {
        machine::KsrMachine m(make_cfg(p));
        r.obs = session.job();
        r.obs.attach(m);
        nas::IsSplit split(m, is);
        if (!load_path.empty()) {
          m.restore_from(load_path);
        } else {
          const auto w0 = std::chrono::steady_clock::now();
          split.run_warmup();
          if (opt.warm_start) {
            // The fork below skips a warm-up of (approximately) this cost.
            r.saved_ms = static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - w0)
                    .count());
            image = m.checkpoint();
            if (!save_path.empty()) ckpt::write_file(save_path, image);
          }
        }
        r.seconds = split.run_ranked().seconds;
        r.obs.finish();
        r.events = m.engine().events_dispatched();
        r.quanta = m.parallel_engine().quanta();
        if (scale_out) capture_point(r, m);
      }
      {
        machine::KsrMachine m(make_cfg(p));
        r.obs_np = session.job();
        r.obs_np.attach(m);
        nas::IsSplit split(m, is_np);
        if (!load_path.empty()) {
          m.restore_from(load_path);
        } else if (opt.warm_start) {
          m.restore(image);
        } else {
          split.run_warmup();
        }
        r.seconds_np = split.run_ranked().seconds;
        r.obs_np.finish();
        r.events += m.engine().events_dispatched();
        r.quanta += m.parallel_engine().quanta();
      }
      return r;
    });
  }
  std::vector<Run> seconds = runner.run(jobs);

  // Per-point scale-out telemetry, machine-parsable like the [host] bench
  // line: report.py folds these into BENCH_host.json under "points".
  auto point_line = [scale_out](const char* kernel, unsigned p, const Run& r) {
    if (!scale_out) return;
    std::cerr << "[host] point bench=fig8_scaleout kernel=" << kernel
              << " procs=" << p << " quanta=" << r.quanta
              << " barrier_wait_ppm=" << r.barrier_wait_ppm
              << " ring_util_ppm_l0=" << r.ring_util_ppm_l0
              << " ring_util_ppm_l1=" << r.ring_util_ppm_l1
              << " hot_shard=" << r.hot_shard
              << " hot_shard_requests=" << r.hot_shard_requests << "\n";
  };

  std::vector<std::pair<unsigned, double>> cg_t, is_t, is_np_t;
  for (std::size_t i = 0; i < procs.size(); ++i) {
    host.add_events(seconds[2 * i].events + seconds[2 * i + 1].events);
    host.add_quanta(seconds[2 * i].quanta + seconds[2 * i + 1].quanta);
    point_line("cg", procs[i], seconds[2 * i]);
    point_line("is", procs[i], seconds[2 * i + 1]);
    if (opt.warm_start) host.add_warm_saved_ms(seconds[2 * i + 1].saved_ms);
    if (session.active()) {
      const std::string p = std::to_string(procs[i]);
      session.collect(std::move(seconds[2 * i].obs), "cg p=" + p);
      session.collect(std::move(seconds[2 * i + 1].obs), "is p=" + p);
      if (split_is) {
        session.collect(std::move(seconds[2 * i + 1].obs_np),
                        "is(no-pf) p=" + p);
      }
    }
    cg_t.emplace_back(procs[i], seconds[2 * i].seconds);
    is_t.emplace_back(procs[i], seconds[2 * i + 1].seconds);
    if (split_is) {
      is_np_t.emplace_back(procs[i], seconds[2 * i + 1].seconds_np);
    }
  }
  const auto cg_rows = study::scaling_rows(cg_t);
  const auto is_rows = study::scaling_rows(is_t);

  std::vector<std::string> headers{"procs", "CG speedup", "IS speedup"};
  if (split_is) headers.push_back("IS(no-pf) speedup");
  TextTable t(headers);
  const auto is_np_rows =
      split_is ? study::scaling_rows(is_np_t)
               : std::vector<study::ScalingRow>{};
  for (std::size_t i = 0; i < procs.size(); ++i) {
    std::vector<std::string> row{std::to_string(procs[i]),
                                 TextTable::num(cg_rows[i].speedup, 2),
                                 TextTable::num(is_rows[i].speedup, 2)};
    if (split_is) row.push_back(TextTable::num(is_np_rows[i].speedup, 2));
    t.add_row(std::move(row));
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    if (scale_out) {
      std::cout << "\nExtrapolation past the paper: sharded directories and"
                   "\nper-leaf rings keep both kernels scaling beyond 128"
                   " cells\nuntil problem-size per cell, not the level-1"
                   " ring, is the limit.\n";
    } else {
      std::cout << "\nPaper expectations (Fig. 8): both rise to ~16"
                   " processors;"
                   "\nCG reaches the low twenties at 32 while IS flattens"
                   " near 19 and\ndips slightly from 30 to 32 (ring"
                   " saturation).\n";
    }
  }
  return 0;
}
