file(REMOVE_RECURSE
  "CMakeFiles/ring_trace.dir/ring_trace.cpp.o"
  "CMakeFiles/ring_trace.dir/ring_trace.cpp.o.d"
  "ring_trace"
  "ring_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ring_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
