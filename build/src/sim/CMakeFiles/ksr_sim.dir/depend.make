# Empty dependencies file for ksr_sim.
# This may be replaced when dependencies are built.
