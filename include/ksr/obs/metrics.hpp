#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "ksr/cache/perf_monitor.hpp"
#include "ksr/machine/machine.hpp"
#include "ksr/sim/time.hpp"

// Machine-wide metrics: the whole-machine view the paper's authors got from
// the KSR-1's hardware performance monitor, plus interval time series.
//
// MetricsRegistry aggregates the per-cell PerfMonitor counters across every
// cell and, when attached, samples them periodically *on the simulated
// clock* through the engine's observer lane — so a 100 us sampling period
// means one sample per 100 us of simulated time, bit-identical wall-clock
// independent, and provably non-perturbing (observers never touch the main
// event queue or events_dispatched()).
namespace ksr::obs {

/// One point of the interval time series. Single-domain samples cover the
/// whole machine (domain == 0); multi-domain samples cover one domain's
/// cells and rings only, taken on that domain's own engine (mode B).
struct MetricsSample {
  sim::Time t = 0;
  unsigned domain = 0;
  cache::PerfMonitor pmon;        // cumulative, summed over covered cells
  machine::NetSnapshot net;       // cumulative + instantaneous ring state
};

class MetricsRegistry {
 public:
  static constexpr sim::Duration kDefaultPeriodNs = 100'000;  // 100 us

  /// Sum the per-cell performance monitors of `m` (the machine-wide view).
  [[nodiscard]] static cache::PerfMonitor aggregate(machine::Machine& m);

  /// Start sampling `m` every `period_ns` of simulated time. Call before
  /// Machine::run(); the sampling chain ends with the run. A registry
  /// observes exactly one machine. On a multi-domain machine (mode B) one
  /// observer chain runs per domain, on that domain's engine, reading only
  /// domain-owned state (its cells' pmon + its rings) — no cross-domain
  /// read, no host race, and the merged series is bit-identical at any
  /// --sim-threads because every sample is (simulated time, domain)-keyed.
  void attach(machine::Machine& m, sim::Duration period_ns = kDefaultPeriodNs);

  /// Take the final sample at the machine's current simulated time (the
  /// observer lane drops samples past the last event, so the tail interval
  /// is captured here). Call after Machine::run().
  void finish();

  [[nodiscard]] const std::vector<MetricsSample>& samples() const noexcept {
    return samples_;
  }

  /// Interval time series as CSV: per-interval deltas of the interconnect
  /// counters plus instantaneous slot utilization. `label`, when non-empty,
  /// is prepended as a first "job" column (the SweepRunner merge format);
  /// `header` controls whether the header row is emitted. Single-domain
  /// output is byte-identical to the seed format; multi-domain output adds
  /// a `domain` column after time_ns, with deltas tracked per domain lane.
  void write_csv(std::ostream& os, std::string_view label = {},
                 bool header = true) const;

 private:
  void sample_now();
  void arm();
  void sample_domain(unsigned d);
  void arm_domain(unsigned d);

  machine::Machine* machine_ = nullptr;
  sim::Duration period_ = kDefaultPeriodNs;
  bool multi_ = false;
  unsigned domains_ = 1;
  std::vector<MetricsSample> samples_;  // mode A; mode B merged at finish()
  std::vector<std::vector<MetricsSample>> domain_samples_;  // mode B, per d
};

}  // namespace ksr::obs
