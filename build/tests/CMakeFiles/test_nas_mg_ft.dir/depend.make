# Empty dependencies file for test_nas_mg_ft.
# This may be replaced when dependencies are built.
