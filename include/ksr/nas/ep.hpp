#pragma once

#include <array>
#include <cstdint>

#include "ksr/machine/machine.hpp"

// NAS Embarrassingly Parallel (EP) kernel (paper §3.3).
//
// Generates pairs of uniform pseudorandom numbers with the NAS linear
// congruential generator (a = 5^13, mod 2^46), applies the Marsaglia polar
// acceptance test, and tallies the accepted Gaussian deviates into ten
// annular bins. Parallelisation is by pair index with LCG skip-ahead, so the
// result is bit-identical for any processor count — which the tests verify.
// There is essentially no communication: the paper measured linear speedup.
namespace ksr::nas {

struct EpConfig {
  unsigned log2_pairs = 14;      // paper/NAS class sizes are 2^28+; scaled
  std::uint64_t seed = 271828183;
  std::uint64_t work_per_pair = 180;  // CPU cycles of FP work per pair
};

struct EpResult {
  double sum_x = 0.0;
  double sum_y = 0.0;
  std::array<std::uint64_t, 10> annulus_counts{};
  std::uint64_t accepted = 0;
  double seconds = 0.0;  // timed region (slowest cell)
};

/// Run EP on the machine; all cells participate.
EpResult run_ep(machine::Machine& m, const EpConfig& cfg);

/// Reference: serial host-side computation of the same figures (no timing).
EpResult ep_reference(const EpConfig& cfg);

}  // namespace ksr::nas
