file(REMOVE_RECURSE
  "CMakeFiles/test_nas_mg_ft.dir/test_nas_mg_ft.cpp.o"
  "CMakeFiles/test_nas_mg_ft.dir/test_nas_mg_ft.cpp.o.d"
  "test_nas_mg_ft"
  "test_nas_mg_ft.pdb"
  "test_nas_mg_ft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nas_mg_ft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
