#include "ksr/nas/ft.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "ksr/sim/rng.hpp"
#include "ksr/sync/barrier.hpp"

namespace ksr::nas {

namespace {

/// Complex N^3 grid: element (x,y,z) stores (re, im) at interleaved doubles.
struct FtGrid {
  mem::SharedArray<double> mem;
  std::size_t n = 0;

  [[nodiscard]] std::size_t base(std::size_t x, std::size_t y,
                                 std::size_t z) const noexcept {
    return 2 * ((z * n + y) * n + x);
  }
};

struct Cpx {
  double re = 0, im = 0;
};

[[nodiscard]] Cpx read_cpx(machine::Cpu& cpu, FtGrid& g, std::size_t b) {
  return {cpu.read(g.mem, b), cpu.read(g.mem, b + 1)};
}
void write_cpx(machine::Cpu& cpu, FtGrid& g, std::size_t b, Cpx v) {
  cpu.write(g.mem, b, v.re);
  cpu.write(g.mem, b + 1, v.im);
}

/// In-place radix-2 FFT along axis `d` for the line at (c1, c2) — c1 is the
/// other in-plane coordinate and c2 the slab coordinate, matching the
/// partition used by the caller. `sign` −1 forward, +1 inverse.
void fft_line(machine::Cpu& cpu, FtGrid& g, unsigned d, std::size_t c1,
              std::size_t c2, int sign, std::uint64_t work) {
  const std::size_t n = g.n;
  auto at = [&](std::size_t i) {
    switch (d) {
      case 0: return g.base(i, c1, c2);
      case 1: return g.base(c1, i, c2);
      default: return g.base(c1, c2, i);
    }
  };
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) {
      const Cpx a = read_cpx(cpu, g, at(i));
      const Cpx b = read_cpx(cpu, g, at(j));
      write_cpx(cpu, g, at(i), b);
      write_cpx(cpu, g, at(j), a);
      cpu.work(4);
    }
  }
  // Butterfly stages.
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang =
        sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    const Cpx wl{std::cos(ang), std::sin(ang)};
    for (std::size_t i = 0; i < n; i += len) {
      Cpx w{1.0, 0.0};
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cpx a = read_cpx(cpu, g, at(i + k));
        const Cpx b = read_cpx(cpu, g, at(i + k + len / 2));
        const Cpx t{b.re * w.re - b.im * w.im, b.re * w.im + b.im * w.re};
        write_cpx(cpu, g, at(i + k), {a.re + t.re, a.im + t.im});
        write_cpx(cpu, g, at(i + k + len / 2), {a.re - t.re, a.im - t.im});
        const Cpx w2{w.re * wl.re - w.im * wl.im,
                     w.re * wl.im + w.im * wl.re};
        w = w2;
        cpu.work(work);
      }
    }
  }
}

/// One full 3-D transform: x and y lines over the z-slab, z lines over the
/// y-slab (the repartition = the all-to-all).
void fft3d(machine::Cpu& cpu, FtGrid& g, int sign, unsigned nproc,
           sync::Barrier& barrier, std::uint64_t work) {
  const std::size_t n = g.n;
  const unsigned me = cpu.id();
  const std::size_t z_lo = n * me / nproc;
  const std::size_t z_hi = n * (me + 1) / nproc;
  const std::size_t y_lo = n * me / nproc;
  const std::size_t y_hi = n * (me + 1) / nproc;

  for (std::size_t z = z_lo; z < z_hi; ++z) {
    for (std::size_t y = 0; y < n; ++y) fft_line(cpu, g, 0, y, z, sign, work);
  }
  barrier.arrive(cpu);
  for (std::size_t z = z_lo; z < z_hi; ++z) {
    for (std::size_t x = 0; x < n; ++x) fft_line(cpu, g, 1, x, z, sign, work);
  }
  barrier.arrive(cpu);
  for (std::size_t y = y_lo; y < y_hi; ++y) {
    for (std::size_t x = 0; x < n; ++x) fft_line(cpu, g, 2, x, y, sign, work);
  }
  barrier.arrive(cpu);
}

}  // namespace

FtResult run_ft(machine::Machine& m, const FtConfig& cfg) {
  const std::size_t n = 1ull << cfg.log2_n;
  const std::size_t points = n * n * n;
  const unsigned nproc = m.nproc();

  FtGrid g;
  g.n = n;
  g.mem = m.alloc<double>("ft.grid", 2 * points);

  // Pseudorandom initial field; keep a host copy for the round-trip check.
  std::vector<double> original(2 * points);
  {
    sim::Rng rng(cfg.seed);
    for (std::size_t i = 0; i < 2 * points; ++i) {
      original[i] = rng.uniform() - 0.5;
      g.mem.set_value(i, original[i]);
    }
  }

  auto barrier = sync::make_barrier(m, sync::BarrierKind::kSystem);
  FtResult out;
  double t_max = 0;
  double checksum = 0;

  m.run([&](machine::Cpu& cpu) {
    const unsigned me = cpu.id();
    const std::size_t z_lo = n * me / nproc;
    const std::size_t z_hi = n * (me + 1) / nproc;

    // Warm-up: own my z-slab.
    for (std::size_t z = z_lo; z < z_hi; ++z) {
      cpu.read_range(g.mem.addr(g.base(0, 0, z)),
                     2 * n * n * sizeof(double));
    }
    barrier->arrive(cpu);
    const double t0 = cpu.seconds();

    // Forward transform.
    fft3d(cpu, g, -1, nproc, *barrier, cfg.work_per_butterfly);

    // Checksum in the frequency domain (cell 0, its own slab suffices for
    // timing realism; the full Parseval sum is taken host-side after).
    for (unsigned it = 0; it < cfg.iterations; ++it) {
      // Evolve: pointwise phase factors on my slab (z-partition; purely
      // local), then inverse transform.
      for (std::size_t z = z_lo; z < z_hi; ++z) {
        for (std::size_t y = 0; y < n; ++y) {
          for (std::size_t x = 0; x < n; ++x) {
            const std::size_t b = g.base(x, y, z);
            const Cpx v = read_cpx(cpu, g, b);
            // Unit-magnitude factor: preserves the round-trip check.
            const double ang = 1e-3 * static_cast<double>(x + y + z);
            const Cpx f{std::cos(ang), std::sin(ang)};
            write_cpx(cpu, g, b,
                      {v.re * f.re - v.im * f.im, v.re * f.im + v.im * f.re});
            cpu.work(cfg.work_per_butterfly);
          }
        }
      }
      barrier->arrive(cpu);
    }

    // Undo the evolution (so the round-trip check stays exact), then invert.
    for (std::size_t z = z_lo; z < z_hi; ++z) {
      for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
          const std::size_t b = g.base(x, y, z);
          const Cpx v = read_cpx(cpu, g, b);
          const double ang = -1e-3 * static_cast<double>(x + y + z) *
                             static_cast<double>(cfg.iterations);
          const Cpx f{std::cos(ang), std::sin(ang)};
          write_cpx(cpu, g, b,
                    {v.re * f.re - v.im * f.im, v.re * f.im + v.im * f.re});
          cpu.work(cfg.work_per_butterfly);
        }
      }
    }
    barrier->arrive(cpu);
    fft3d(cpu, g, +1, nproc, *barrier, cfg.work_per_butterfly);

    // Normalise (1/N^3) on my slab.
    const double inv = 1.0 / static_cast<double>(points);
    for (std::size_t z = z_lo; z < z_hi; ++z) {
      for (std::size_t i = 0; i < 2 * n * n; ++i) {
        const std::size_t b = g.base(0, 0, z) + i;
        cpu.write(g.mem, b, cpu.read(g.mem, b) * inv);
        cpu.work(1);
      }
    }
    barrier->arrive(cpu);

    const double dt = cpu.seconds() - t0;
    if (dt > t_max) t_max = dt;
  });

  out.seconds = t_max;
  (void)checksum;

  // Round-trip error and a simple magnitude checksum, host-side.
  double err = 0, sum = 0;
  for (std::size_t i = 0; i < 2 * points; ++i) {
    const double v = g.mem.value(i);
    err = std::max(err, std::fabs(v - original[i]));
    sum += v * v;
  }
  out.roundtrip_error = err;
  out.checksum = sum;
  return out;
}

}  // namespace ksr::nas
