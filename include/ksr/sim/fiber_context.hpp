#pragma once

#include <cstddef>

// Hand-rolled cooperative context switch (the KSR_FAST_FIBERS fast path).
//
// swapcontext() preserves the signal mask, which costs a sigprocmask syscall
// per switch — two syscalls per simulated wait/wake pair. Cooperative fibers
// inside a single-threaded simulator need none of that: a switch only has to
// preserve what the C ABI says survives a function call, i.e. the
// callee-saved registers and the stack pointer. ksr_ctx_swap is exactly that
// — a handful of pushes, a stack-pointer exchange, and pops.
//
// Contract (documented in docs/MODEL.md):
//   * preserved across a switch: callee-saved integer registers, the stack
//     pointer, everything reachable from the fiber's stack;
//   * NOT preserved: the signal mask (never touched), the FP environment
//     (rounding mode / MXCSR / FPCR — the simulator never changes it), and
//     thread-local storage is shared by all fibers (single host thread).
//
// The portable ucontext path remains available with -DKSR_FAST_FIBERS=OFF;
// both paths produce bit-identical simulations — only host speed differs.

#if defined(KSR_FAST_FIBERS) && (defined(__x86_64__) || defined(__aarch64__))
#define KSR_HAVE_FAST_FIBERS 1
#else
#define KSR_HAVE_FAST_FIBERS 0
#endif

#if KSR_HAVE_FAST_FIBERS

extern "C" {
/// Save the current execution context (callee-saved registers + return
/// address) on the current stack, store the resulting stack pointer in
/// *save_sp, then restore the context whose stack pointer is restore_sp.
/// Returns (in the restored context) when somebody swaps back.
void ksr_ctx_swap(void** save_sp, void* restore_sp);
}

namespace ksr::sim::detail {

/// Prepare a fresh fiber stack so that the first ksr_ctx_swap into the
/// returned stack pointer calls entry(arg) on that stack. `entry` must never
/// return — it must finish by ksr_ctx_swap-ing away for the last time.
[[nodiscard]] void* make_fiber_context(void* stack_base,
                                       std::size_t stack_bytes,
                                       void (*entry)(void*),
                                       void* arg) noexcept;

}  // namespace ksr::sim::detail

#endif  // KSR_HAVE_FAST_FIBERS
