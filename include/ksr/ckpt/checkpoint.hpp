#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

// Versioned, fingerprinted machine checkpoints (docs/CHECKPOINT.md).
//
// A checkpoint image is a little-endian byte stream:
//
//   offset  size  field
//        0     8  magic "KSRCKPT1"
//        8     4  format version (kVersion)
//       12     8  payload size in bytes
//       20     8  FNV-1a 64 fingerprint of the payload bytes
//       28     -  payload
//
// The payload is produced by Writer and consumed by Reader: a flat stream
// of fixed-width integers and length-prefixed strings, written and read in
// lock-step by Machine::checkpoint()/restore() and their subclass hooks.
// There is no in-band schema — the version field is the schema, and the
// restoring machine re-validates every config field against its own
// configuration before touching any state. Any flipped payload byte changes
// the fingerprint and open() rejects the image, so a corrupt checkpoint can
// never half-restore a machine.
namespace ksr::ckpt {

inline constexpr char kMagic[8] = {'K', 'S', 'R', 'C', 'K', 'P', 'T', '1'};
inline constexpr std::uint32_t kVersion = 1;
inline constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8;

/// FNV-1a 64-bit over a byte range — the payload fingerprint. Chosen over a
/// cryptographic hash deliberately: the threat model is accidental
/// corruption (truncated copy, flipped bit), not an adversary.
[[nodiscard]] inline std::uint64_t fnv1a(const std::byte* data,
                                         std::size_t n) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(data[i]);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// Append-only payload builder. All integers are written little-endian and
/// fixed-width so an image is byte-identical across hosts.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(const std::byte* p, std::size_t n) {
    buf_.insert(buf_.end(), p, p + n);
  }

  void str(std::string_view s) {
    u64(s.size());
    bytes(reinterpret_cast<const std::byte*>(s.data()), s.size());
  }

  [[nodiscard]] const std::vector<std::byte>& payload() const noexcept {
    return buf_;
  }

  /// Wrap the payload in the header (magic, version, size, fingerprint) and
  /// return the complete checkpoint image.
  [[nodiscard]] std::vector<std::byte> seal() const;

 private:
  template <typename T>
  void put_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
    }
  }

  std::vector<std::byte> buf_;
};

/// Bounds-checked payload consumer. Every read past the end throws — a
/// truncated or mis-versioned stream fails loudly instead of misreading.
class Reader {
 public:
  explicit Reader(const std::byte* data, std::size_t n)
      : data_(data), size_(n) {}

  [[nodiscard]] std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(data_[pos_++]);
  }
  [[nodiscard]] std::uint32_t u32() { return get_le<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return get_le<std::uint64_t>(); }
  [[nodiscard]] std::int64_t i64() {
    return static_cast<std::int64_t>(get_le<std::uint64_t>());
  }
  [[nodiscard]] bool boolean() { return u8() != 0; }

  void bytes(std::byte* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }

  [[nodiscard]] std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

  /// Throw unless the whole payload was consumed — a length mismatch means
  /// writer and reader disagreed on the schema.
  void expect_end() const {
    if (pos_ != size_) {
      throw std::runtime_error(
          "checkpoint: " + std::to_string(size_ - pos_) +
          " unread payload byte(s) — image written by an incompatible "
          "serializer");
    }
  }

 private:
  void need(std::size_t n) const {
    if (size_ - pos_ < n) {
      throw std::runtime_error(
          "checkpoint: truncated payload (need " + std::to_string(n) +
          " byte(s) at offset " + std::to_string(pos_) + " of " +
          std::to_string(size_) + ")");
    }
  }

  template <typename T>
  [[nodiscard]] T get_le() {
    need(sizeof(T));
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<std::uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Validate a complete image's magic, version, size, and fingerprint;
/// return a Reader positioned at the start of the payload. Throws
/// std::runtime_error with a specific diagnostic on any mismatch.
[[nodiscard]] Reader open(const std::byte* image, std::size_t n);
[[nodiscard]] inline Reader open(const std::vector<std::byte>& image) {
  return open(image.data(), image.size());
}

/// Durable whole-file write: the bytes land in a `<path>.tmp.<pid>` sibling
/// first and reach `path` only through rename(2), which POSIX makes atomic
/// within a filesystem — so a crash, kill, or full disk mid-write can never
/// leave a truncated file under the final name (the old contents, if any,
/// survive instead). Flush errors (ENOSPC surfaces here, not at fwrite) are
/// checked before the rename and the temp file is removed on any failure.
/// Throws std::runtime_error naming the path and the errno text. Shared by
/// checkpoint images, the serve result cache and the campaign outputs.
void atomic_write_file(const std::string& path, const void* data,
                       std::size_t n);
inline void atomic_write_file(const std::string& path,
                              const std::string& data) {
  atomic_write_file(path, data.data(), data.size());
}

/// Whole-image file I/O (binary). write_file is atomic_write_file — a
/// partial image can never appear under the final name; read_file throws on
/// any I/O failure.
void write_file(const std::string& path, const std::vector<std::byte>& image);
[[nodiscard]] std::vector<std::byte> read_file(const std::string& path);

}  // namespace ksr::ckpt
