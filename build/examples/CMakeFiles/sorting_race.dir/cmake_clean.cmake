file(REMOVE_RECURSE
  "CMakeFiles/sorting_race.dir/sorting_race.cpp.o"
  "CMakeFiles/sorting_race.dir/sorting_race.cpp.o.d"
  "sorting_race"
  "sorting_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorting_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
