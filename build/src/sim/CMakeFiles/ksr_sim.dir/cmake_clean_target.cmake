file(REMOVE_RECURSE
  "libksr_sim.a"
)
