// Reproduces Fig. 4 ("Performance of the barriers on 32-node KSR-1"):
// mean barrier episode time for the nine algorithms, P = 2..32.
//
// Each (barrier, P) cell is an independent simulation — one SweepRunner job
// per cell, merged in submission order so the table is bit-identical for
// any --jobs value.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"

namespace {

struct Cell {
  double seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t quanta = 0;
  ksr::obs::JobObs obs;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  HostMetrics host("fig4_barriers_ksr1");
  obs::Session session = make_obs_session(opt, "fig4_barriers_ksr1");
  SweepRunner runner(opt.jobs);
  host.set_jobs(runner.jobs());
  host.set_sim_threads(opt.sim_threads);
  const unsigned sim_threads = opt.sim_threads;
  const int episodes = opt.quick ? 5 : 20;
  print_header("Barrier performance on the 32-node KSR-1",
               "Fig. 4, Section 3.2.2");

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{4, 16, 32}
                : std::vector<unsigned>{2, 4, 8, 12, 16, 20, 24, 28, 32};

  std::vector<std::string> headers{"barrier \\ procs"};
  for (unsigned p : procs) headers.push_back(std::to_string(p));
  TextTable t(headers);

  const auto kinds = sync::all_barrier_kinds();
  std::vector<std::function<Cell()>> jobs;
  jobs.reserve(kinds.size() * procs.size());
  for (sync::BarrierKind kind : kinds) {
    for (unsigned p : procs) {
      jobs.emplace_back([kind, p, episodes, sim_threads, &session] {
        machine::KsrMachine m(
            machine::MachineConfig::ksr1(p).with_sim_threads(sim_threads));
        Cell c;
        c.obs = session.job();
        c.obs.attach(m);
        c.seconds = barrier_episode_seconds(m, kind, episodes);
        c.obs.finish();
        c.events = m.engine().events_dispatched();
        c.quanta = m.parallel_engine().quanta();
        return c;
      });
    }
  }
  std::vector<Cell> cells = runner.run(jobs);

  double counter32 = 0, tournament_m32 = 0;
  std::size_t j = 0;
  for (sync::BarrierKind kind : kinds) {
    std::vector<std::string> row{std::string(to_string(kind))};
    for (unsigned p : procs) {
      Cell& c = cells[j++];
      host.add_events(c.events);
      host.add_quanta(c.quanta);
      if (session.active()) {
        session.collect(std::move(c.obs), std::string(to_string(kind)) +
                                              " p=" + std::to_string(p));
      }
      if (p == 32 && kind == sync::BarrierKind::kCounter) counter32 = c.seconds;
      if (p == 32 && kind == sync::BarrierKind::kTournamentM) {
        tournament_m32 = c.seconds;
      }
      row.push_back(TextTable::num(c.seconds * 1e6, 1));  // microseconds
    }
    t.add_row(row);
  }

  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout << "\n(all entries in microseconds per barrier episode)\n"
              << "\nPaper expectations (Fig. 4): counter worst and growing"
                 " steeply;\ntree > dissemination > tournament ~ MCS; the"
                 " global-wakeup-flag (M)\nvariants much flatter, with"
                 " tournament(M) best overall.\n";
    if (counter32 > 0 && tournament_m32 > 0) {
      std::cout << "Measured at P=32: counter/tournament(M) ratio = "
                << TextTable::num(counter32 / tournament_m32, 1) << "x\n";
    }
  }
  return 0;
}
