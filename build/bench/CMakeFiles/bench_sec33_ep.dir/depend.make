# Empty dependencies file for bench_sec33_ep.
# This may be replaced when dependencies are built.
