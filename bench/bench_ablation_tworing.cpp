// Extension (§4, last paragraph): "The increased latency (when we cross the
// one-level ring boundary) manifests itself as a sudden jump in the
// execution time when the number of processors is increased beyond 32. The
// same trend is expected for applications that span more than 32
// processors." The paper only verified this for barriers (Fig. 5); here we
// run the CG and IS kernels across the boundary on the 64-cell KSR-2.
#include "bench_common.hpp"
#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/cg.hpp"
#include "ksr/nas/is.hpp"

int main(int argc, char** argv) {
  using namespace ksr;         // NOLINT
  using namespace ksr::bench;  // NOLINT

  const BenchOptions opt = BenchOptions::parse(argc, argv);
  obs::Session session = make_obs_session(opt, "ablation_tworing");
  print_header("Extension: NAS kernels across the level-1 ring boundary",
               "the Section 4 prediction, beyond the paper's barrier data");

  nas::CgConfig cg;
  cg.n = opt.quick ? 600 : 1200;
  cg.nnz_per_row = opt.quick ? 16 : 40;
  cg.iterations = opt.quick ? 2 : 4;
  nas::IsConfig is;
  is.log2_keys = opt.quick ? 13 : 16;
  is.log2_buckets = opt.quick ? 9 : 11;

  const std::vector<unsigned> procs =
      opt.quick ? std::vector<unsigned>{16, 32, 48}
                : std::vector<unsigned>{16, 24, 32, 40, 48, 56, 64};

  TextTable t({"procs", "rings", "CG time (s)", "CG eff. vs 16",
               "IS time (s)", "IS eff. vs 16"});
  double cg16 = 0, is16 = 0;
  for (unsigned p : procs) {
    const std::string ps = std::to_string(p);
    machine::KsrMachine mc(machine::MachineConfig::ksr2(p).scaled_by(64));
    double cg_t = 0;
    {
      ScopedObs obs(session, mc, "cg p=" + ps);
      cg_t = run_cg(mc, cg).seconds;
    }
    machine::KsrMachine mi(machine::MachineConfig::ksr2(p).scaled_by(64));
    nas::IsResult is_r;
    {
      ScopedObs obs(session, mi, "is p=" + ps);
      is_r = run_is(mi, is);
    }
    if (p == procs.front()) {
      cg16 = cg_t * p;
      is16 = is_r.seconds * p;
    }
    t.add_row({std::to_string(p), p > 32 ? "2" : "1",
               TextTable::num(cg_t, 5),
               TextTable::num(cg16 / (cg_t * p), 3),
               TextTable::num(is_r.seconds, 5),
               TextTable::num(is16 / (is_r.seconds * p), 3)});
  }
  if (opt.csv) {
    t.print_csv();
  } else {
    t.print();
    std::cout
        << "\nExpected: a visible efficiency step once p > 32 — shared reads\n"
           "and the serial sections start crossing the ARDs into the level-1\n"
           "ring, roughly doubling effective remote latency.\n";
  }
  return 0;
}
