# Empty dependencies file for test_machine_coherence.
# This may be replaced when dependencies are built.
