#pragma once

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string_view>

// The one integer-token parser every tool shares.
//
// ksrsim, ksrfuzz, ksrprof and ksrtop each grew their own strtoull
// warn-and-fallback copy, and the copies drifted: some rejected trailing
// junk, some missed ERANGE, and all of them inherited strtoull's little
// trap of accepting a leading '-' on an *unsigned* conversion and silently
// wrapping it ("-1" parsed as 18446744073709551615). These routines are the
// single strict implementation — base-10 only, no whitespace, no sign
// wrap-around, overflow checked — so an edge-case fix lands everywhere at
// once. The warn-and-fallback wrappers reproduce the tools' shared
// diagnostic pattern on top.
namespace ksr::util {

/// Strict base-10 parse of a non-negative integer token. Accepts an
/// optional leading '+'. Returns false (and leaves *out untouched) on an
/// empty token, any non-digit byte (including leading whitespace, a minus
/// sign, hex prefixes and trailing junk) and on overflow past 2^64-1.
[[nodiscard]] constexpr bool parse_u64(std::string_view s,
                                       std::uint64_t* out) noexcept {
  std::size_t i = 0;
  if (i < s.size() && s[i] == '+') ++i;
  if (i >= s.size()) return false;
  std::uint64_t v = 0;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (c < '0' || c > '9') return false;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - d) / 10) {
      return false;
    }
    v = v * 10 + d;
  }
  *out = v;
  return true;
}

/// Strict base-10 parse of a signed integer token ('+'/'-' prefix allowed).
/// Same rejection rules as parse_u64, with INT64_MIN/INT64_MAX bounds.
[[nodiscard]] constexpr bool parse_i64(std::string_view s,
                                       std::int64_t* out) noexcept {
  bool neg = false;
  if (!s.empty() && (s[0] == '+' || s[0] == '-')) {
    neg = s[0] == '-';
    s.remove_prefix(1);
  }
  std::uint64_t mag = 0;
  if (!parse_u64(s, &mag) || (!s.empty() && s[0] == '+')) return false;
  const std::uint64_t limit =
      neg ? static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()) +
                1
          : static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max());
  if (mag > limit) return false;
  *out = neg ? -static_cast<std::int64_t>(mag - 1) - 1
             : static_cast<std::int64_t>(mag);
  return true;
}

/// Warn-and-fallback wrapper (the ksrprof pattern): a malformed token warns
/// on stderr — naming the tool and what the field is — and parses as `def`
/// instead of silently truncating at the first bad byte.
[[nodiscard]] inline std::uint64_t to_u64_or(std::string_view s,
                                             std::uint64_t def,
                                             const char* tool,
                                             const char* what) {
  std::uint64_t v = 0;
  if (parse_u64(s, &v)) return v;
  std::fprintf(stderr, "%s: warning: invalid %s '%.*s'; using %llu\n", tool,
               what, static_cast<int>(s.size()), s.data(),
               static_cast<unsigned long long>(def));
  return def;
}

[[nodiscard]] inline std::int64_t to_i64_or(std::string_view s,
                                            std::int64_t def,
                                            const char* tool,
                                            const char* what) {
  std::int64_t v = 0;
  if (parse_i64(s, &v)) return v;
  std::fprintf(stderr, "%s: warning: invalid %s '%.*s'; using %lld\n", tool,
               what, static_cast<int>(s.size()), s.data(),
               static_cast<long long>(def));
  return def;
}

}  // namespace ksr::util
