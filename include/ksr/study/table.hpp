#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ksr/util/parse.hpp"

// Plain-text / CSV table rendering for the bench harnesses. Every bench
// binary prints the same rows the paper's table or figure reports, plus an
// optional CSV block for replotting.
namespace ksr::study {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  TextTable& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  /// Format a double with `prec` significant decimals.
  [[nodiscard]] static std::string num(double v, int prec = 5) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }
  [[nodiscard]] static std::string sci(double v, int prec = 3) {
    std::ostringstream os;
    os << std::scientific << std::setprecision(prec) << v;
    return os.str();
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      width[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto line = [&] {
      os << '+';
      for (auto w : width) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };
    auto emit = [&](const std::vector<std::string>& cells) {
      os << '|';
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& s = c < cells.size() ? cells[c] : std::string{};
        os << ' ' << s << std::string(width[c] - s.size() + 1, ' ') << '|';
      }
      os << '\n';
    };
    line();
    emit(headers_);
    line();
    for (const auto& row : rows_) emit(row);
    line();
  }

  void print_csv(std::ostream& os = std::cout) const {
    auto emit = [&](const std::vector<std::string>& cells) {
      for (std::size_t c = 0; c < cells.size(); ++c) {
        if (c) os << ',';
        os << cells[c];
      }
      os << '\n';
    };
    emit(headers_);
    for (const auto& row : rows_) emit(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Shared bench-binary CLI: `--csv` switches the output format,
/// `--quick`/`--full` pick a scale, and `--jobs N` shards the sweep over N
/// host threads (0 = one per hardware core; results are bit-identical for
/// any value — see ksr/host/sweep_runner.hpp). `--sim-threads N` additionally
/// threads each *single* simulation through the conservative-quantum
/// ParallelEngine (docs/PARALLEL.md); also bit-identical for any value.
///
/// Observability (see docs/OBSERVABILITY.md): `--trace[=cat,...]` captures a
/// structured event trace, `--trace-out FILE` picks its output (.json =
/// Chrome/Perfetto trace events, .csv = merged CSV; default
/// <bench>_trace.json), `--trace-cap N` sizes the per-job record buffer
/// (default 2^18; overflow is counted, never silent), `--metrics-csv FILE`
/// writes the sampled machine-wide metrics time series, `--report FILE`
/// writes a ksrprof simulated-time profile (sharing patterns, sync critical
/// paths, stall attribution — no trace file needed), and `--topo-report FILE`
/// writes the byte-stable topology report (per-level ring utilization,
/// directory-shard pressure, boundary channels, leaf-to-leaf traffic; plus
/// FILE.matrix.csv, the heatmap CSV). None of these change simulated timing
/// or the events_dispatched fingerprints — enforced by test and
/// bench_host.sh.
///
/// Unrecognized arguments warn on stderr (fail-soft: a typo like `--job=4`
/// must not silently run with defaults).
struct BenchOptions {
  bool csv = false;
  bool quick = false;       // reduced sizes for smoke runs
  bool full = false;        // paper-like sizes (slow)
  unsigned jobs = 0;        // host shards; 0 = hardware concurrency
  bool trace = false;       // capture a structured event trace
  std::string trace_cats;   // category filter; empty = all
  std::string trace_out;    // trace output path; empty = default
  std::string metrics_csv;  // metrics time-series path; empty = off
  std::string report;       // ksrprof profile report path; empty = off
  std::string topo_report;  // topology report path; empty = off
  std::size_t trace_cap = 0;  // records per job buffer; 0 = default
  unsigned sim_threads = 1;   // host threads per simulation (docs/PARALLEL.md)

  // Checkpoint/warm-start flags (docs/CHECKPOINT.md). Benches that support
  // the split-phase flow honour them; others warn and ignore:
  //   --warm-start      sweep points sharing a warm-up prefix fork from one
  //                     in-memory checkpoint instead of re-simulating it
  //   --cold-start      the same split-phase sweep without forking (the
  //                     byte-identical reference for --warm-start)
  //   --checkpoint-at P write each donor checkpoint to <P>.p<procs>.ckpt
  //   --restore-from P  load donor checkpoints from a previous
  //                     --checkpoint-at run instead of simulating warm-ups
  bool warm_start = false;
  bool cold_start = false;
  std::string checkpoint_at;  // donor checkpoint path prefix; empty = off
  std::string restore_from;   // donor checkpoint path prefix; empty = off

  static void parse_trace_cap(BenchOptions* o, const char* s) {
    std::uint64_t v = 0;
    if (!util::parse_u64(s, &v) || v == 0) {
      std::cerr << "warning: ignoring invalid --trace-cap value '" << s
                << "' (expected a positive record count)\n";
    } else {
      o->trace_cap = static_cast<std::size_t>(v);
    }
  }

  static BenchOptions parse(int argc, char** argv) {
    BenchOptions o;
    // The one strict parser every tool shares (ksr/util/parse.hpp): rejects
    // empty, partial, negative, and overflowing tokens in one place.
    auto parse_unsigned = [](const char* s, const char* flag, unsigned* out) {
      std::uint64_t v = 0;
      if (!util::parse_u64(s, &v) ||
          v > std::numeric_limits<unsigned>::max()) {
        std::cerr << "warning: ignoring invalid " << flag << " value '" << s
                  << "' (expected a non-negative integer)\n";
      } else {
        *out = static_cast<unsigned>(v);
      }
    };
    auto parse_jobs = [&o, &parse_unsigned](const char* s) {
      parse_unsigned(s, "--jobs", &o.jobs);
    };
    auto parse_sim_threads = [&o, &parse_unsigned](const char* s) {
      parse_unsigned(s, "--sim-threads", &o.sim_threads);
    };
    // "--flag=VALUE" match; returns the value through `out`.
    auto eq_value = [](const std::string& a, const std::string& flag,
                       std::string* out) {
      if (a.size() <= flag.size() + 1 || a.compare(0, flag.size(), flag) != 0 ||
          a[flag.size()] != '=') {
        return false;
      }
      *out = a.substr(flag.size() + 1);
      return true;
    };
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      std::string v;
      if (a == "--csv") {
        o.csv = true;
      } else if (a == "--quick") {
        o.quick = true;
      } else if (a == "--full") {
        o.full = true;
      } else if (a == "--jobs" && i + 1 < argc) {
        parse_jobs(argv[++i]);
      } else if (eq_value(a, "--jobs", &v)) {
        parse_jobs(v.c_str());
      } else if (a == "--sim-threads" && i + 1 < argc) {
        parse_sim_threads(argv[++i]);
      } else if (eq_value(a, "--sim-threads", &v)) {
        parse_sim_threads(v.c_str());
      } else if (a == "--trace") {
        o.trace = true;
      } else if (eq_value(a, "--trace", &v)) {
        o.trace = true;
        o.trace_cats = v;
      } else if (a == "--trace-out" && i + 1 < argc) {
        o.trace = true;
        o.trace_out = argv[++i];
      } else if (eq_value(a, "--trace-out", &v)) {
        o.trace = true;
        o.trace_out = v;
      } else if (a == "--metrics-csv" && i + 1 < argc) {
        o.metrics_csv = argv[++i];
      } else if (eq_value(a, "--metrics-csv", &v)) {
        o.metrics_csv = v;
      } else if (a == "--report" && i + 1 < argc) {
        o.report = argv[++i];
      } else if (eq_value(a, "--report", &v)) {
        o.report = v;
      } else if (a == "--topo-report" && i + 1 < argc) {
        o.topo_report = argv[++i];
      } else if (eq_value(a, "--topo-report", &v)) {
        o.topo_report = v;
      } else if (a == "--trace-cap" && i + 1 < argc) {
        parse_trace_cap(&o, argv[++i]);
      } else if (eq_value(a, "--trace-cap", &v)) {
        parse_trace_cap(&o, v.c_str());
      } else if (a == "--warm-start") {
        o.warm_start = true;
      } else if (a == "--cold-start") {
        o.cold_start = true;
      } else if (a == "--checkpoint-at" && i + 1 < argc) {
        o.checkpoint_at = argv[++i];
      } else if (eq_value(a, "--checkpoint-at", &v)) {
        o.checkpoint_at = v;
      } else if (a == "--restore-from" && i + 1 < argc) {
        o.restore_from = argv[++i];
      } else if (eq_value(a, "--restore-from", &v)) {
        o.restore_from = v;
      } else {
        std::cerr << "warning: ignoring unknown argument '" << a << "'\n";
      }
    }
    // jobs sweep shards × sim_threads engine threads all run at once; warn
    // when that oversubscribes the host. Results are bit-identical either
    // way — only wall time suffers.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0) {
      const unsigned j = o.jobs == 0 ? hw : o.jobs;
      const unsigned st = o.sim_threads == 0 ? hw : o.sim_threads;
      if (static_cast<unsigned long long>(j) * st > hw) {
        std::cerr << "warning: --jobs " << j << " x --sim-threads " << st
                  << " = " << j * st << " host threads on " << hw
                  << " core(s); expect oversubscription (results are "
                     "unaffected, wall time may suffer)\n";
      }
    }
    return o;
  }
};

}  // namespace ksr::study
