#include "ksr/sim/parallel_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>

namespace ksr::sim {

namespace {
constexpr Time kNever = std::numeric_limits<Time>::max();

[[nodiscard]] std::uint64_t wall_now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ParallelEngine::ParallelEngine(const Config& cfg) : cfg_(cfg) {
  if (cfg_.domains == 0) {
    throw std::invalid_argument("ParallelEngine: domains == 0");
  }
  if (cfg_.domains > 1 && cfg_.quantum_ns == 0) {
    throw std::invalid_argument(
        "ParallelEngine: domains > 1 requires a positive quantum "
        "(the minimum cross-domain latency of the model)");
  }
  threads_ = cfg_.threads == 0
                 ? std::max(1u, std::thread::hardware_concurrency())
                 : cfg_.threads;
  // Pool slots beyond domains()+1 could never hold work: slots 0..threads-2
  // are workers, the last slot is the coordinator's own share.
  threads_ = std::min(threads_, cfg_.domains + 1);
  engines_.reserve(cfg_.domains);
  for (unsigned d = 0; d < cfg_.domains; ++d) {
    engines_.push_back(std::make_unique<Engine>());
  }
  channels_.resize(static_cast<std::size_t>(cfg_.domains) * cfg_.domains);
  channel_stats_.resize(channels_.size());
  domain_errors_.resize(cfg_.domains);
  slot_wall_ns_.resize(threads_, 0);
  quantum_domain_wall_ns_.resize(cfg_.domains, 0);
  domain_wall_ns_.resize(cfg_.domains, 0);
  critical_quanta_.resize(cfg_.domains, 0);
}

ParallelEngine::~ParallelEngine() { stop_pool(); }

void ParallelEngine::set_tie_break_seed(std::uint64_t seed) noexcept {
  for (auto& eng : engines_) eng->set_tie_break_seed(seed);
}

void ParallelEngine::assert_quiescent(const char* what) const {
  for (unsigned d = 0; d < domains(); ++d) {
    if (!engines_[d]->quiescent()) {
      throw std::logic_error(
          std::string(what) + ": domain " + std::to_string(d) +
          " is not quiescent (" + std::to_string(engines_[d]->live_fibers()) +
          " live fiber(s), next event at " +
          (engines_[d]->next_event_time() == kNever
               ? std::string("<none>")
               : std::to_string(engines_[d]->next_event_time())) +
          "ns) — checkpoints are only legal between run() calls");
    }
  }
  const unsigned d_count = domains();
  for (unsigned src = 0; src < d_count; ++src) {
    for (unsigned dst = 0; dst < d_count; ++dst) {
      const auto& q = channels_[src * d_count + dst].q;
      if (!q.empty()) {
        throw std::logic_error(
            std::string(what) + ": boundary channel " + std::to_string(src) +
            "->" + std::to_string(dst) + " holds " + std::to_string(q.size()) +
            " undelivered packet(s) (earliest t=" + std::to_string(q.front().t) +
            "ns) — capture refused; drain all channels before checkpointing");
      }
    }
  }
}

std::uint64_t ParallelEngine::events_dispatched() const noexcept {
  std::uint64_t n = 0;
  for (const auto& eng : engines_) n += eng->events_dispatched();
  return n;
}

Time ParallelEngine::next_event_time() const noexcept {
  Time next = kNever;
  for (const auto& eng : engines_) {
    next = std::min(next, eng->next_event_time());
  }
  return next;
}

void ParallelEngine::send(unsigned src, unsigned dst, Time t, InlineFn fn) {
  if (src >= domains() || dst >= domains()) {
    throw std::out_of_range("ParallelEngine::send: domain out of range");
  }
  if (!running_) {
    // Setup phase: seed the destination queue directly (any t >= 0).
    engines_[dst]->at(t, std::move(fn));
    return;
  }
  // Conservative lookahead rule: a boundary event produced inside quantum k
  // must not land before quantum k+1 — otherwise its destination may have
  // already executed past t concurrently. With a single domain the quantum
  // is unbounded, so every mid-run send is a violation by definition (use
  // domain(0).at directly instead).
  if (t < horizon_) {
    throw std::logic_error(
        "ParallelEngine::send: lookahead violation — boundary event at t=" +
        std::to_string(t) + " before the current quantum ends at " +
        std::to_string(horizon_) + " (quantum=" + std::to_string(cfg_.quantum_ns) +
        "ns); the quantum must not exceed the minimum cross-domain latency");
  }
  channel(src, dst).q.push_back(Packet{t, std::move(fn)});
}

void ParallelEngine::advance_slot(unsigned slot) {
  std::uint64_t slot_wall = 0;
  for (unsigned d = slot; d < domains(); d += threads_) {
    const std::uint64_t t0 = wall_now_ns();
    try {
      engines_[d]->run_until(horizon_);
    } catch (...) {
      if (!domain_errors_[d]) domain_errors_[d] = std::current_exception();
    }
    const std::uint64_t dt = wall_now_ns() - t0;
    quantum_domain_wall_ns_[d] = dt;  // this thread alone owns domain d
    domain_wall_ns_[d] += dt;
    slot_wall += dt;
  }
  slot_wall_ns_[slot] = slot_wall;
}

void ParallelEngine::start_pool() {
  if (threads_ <= 1 || !pool_.empty()) return;
  pool_.reserve(threads_ - 1);
  for (unsigned w = 0; w + 1 < threads_; ++w) {
    pool_.emplace_back([this, w] { worker_main(w); });
  }
}

void ParallelEngine::stop_pool() noexcept {
  if (pool_.empty()) return;
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : pool_) t.join();
  pool_.clear();
  shutdown_ = false;
}

void ParallelEngine::worker_main(unsigned slot) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return shutdown_ || epoch_ != seen; });
      if (shutdown_) return;
      seen = epoch_;
    }
    advance_slot(slot);
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++arrived_;
      if (arrived_ == threads_ - 1) cv_done_.notify_one();
    }
  }
}

void ParallelEngine::run_quantum_phase() {
  const std::uint64_t phase_t0 = wall_now_ns();
  if (threads_ == 1) {
    // Serial quantum loop (still conservative, still barrier-merged):
    // the --sim-threads 1 reference every thread count must match.
    advance_slot(0);
  } else {
    {
      std::lock_guard<std::mutex> lk(mu_);
      arrived_ = 0;
      ++epoch_;
    }
    cv_work_.notify_all();
    // The coordinator advances the last slot's domains itself rather than
    // idling at the barrier. With one domain and threads > 1 this share is
    // empty, which is deliberate: the whole simulation then runs on worker
    // 0, exercising the cross-thread fiber path end to end.
    advance_slot(threads_ - 1);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return arrived_ == threads_ - 1; });
  }
  // Self-profiler fold (coordinator only; the barrier above published every
  // worker's scratch). Phase wall is the end-to-end quantum time; each
  // slot's idle share is its tail wait at this barrier.
  const std::uint64_t phase_wall = wall_now_ns() - phase_t0;
  phase_wall_ns_ += phase_wall;
  for (unsigned s = 0; s < threads_; ++s) {
    barrier_wait_ns_ += phase_wall - std::min(phase_wall, slot_wall_ns_[s]);
  }
  unsigned critical = 0;
  for (unsigned d = 1; d < domains(); ++d) {
    if (quantum_domain_wall_ns_[d] > quantum_domain_wall_ns_[critical]) {
      critical = d;
    }
  }
  ++critical_quanta_[critical];
}

ParallelEngine::HostProfile ParallelEngine::host_profile() const {
  HostProfile p;
  p.threads = threads_;
  p.quanta = quanta_;
  p.phase_wall_ns = phase_wall_ns_;
  p.barrier_wait_ns = barrier_wait_ns_;
  p.domain_wall_ns = domain_wall_ns_;
  p.critical_quanta = critical_quanta_;
  return p;
}

void ParallelEngine::merge_channels() {
  const unsigned d_count = domains();
  std::vector<Packet> merged;
  for (unsigned dst = 0; dst < d_count; ++dst) {
    merged.clear();
    for (unsigned src = 0; src < d_count; ++src) {
      auto& q = channel(src, dst).q;
      if (!q.empty()) {
        // Per-channel lifetime counters (topo report). horizon_ is the
        // just-finished quantum's exclusive end, and send() guaranteed
        // every packet lands at or after it, so slack is non-negative.
        ChannelStats& cs = channel_stats_[src * d_count + dst];
        cs.packets += q.size();
        cs.max_per_quantum = std::max<std::uint64_t>(cs.max_per_quantum,
                                                     q.size());
        for (const Packet& p : q) {
          const std::uint64_t slack =
              static_cast<std::uint64_t>(p.t - horizon_) / cfg_.quantum_ns;
          ++cs.slack_hist[std::min<std::uint64_t>(
              slack, cs.slack_hist.size() - 1)];
        }
      }
      for (auto& p : q) merged.push_back(std::move(p));
      q.clear();
    }
    if (merged.empty()) continue;
    // Deterministic merge order: (time, src domain, channel append order).
    // stable_sort keeps the src-major append order for same-time packets;
    // Engine::at() then assigns the destination's tie-break sequence in
    // exactly this order (hashed when a fuzz seed is active), so the merged
    // schedule is a pure function of simulated data — bit-identical at any
    // thread count.
    std::stable_sort(
        merged.begin(), merged.end(),
        [](const Packet& a, const Packet& b) { return a.t < b.t; });
    boundary_packets_ += merged.size();
    for (auto& p : merged) engines_[dst]->at(p.t, std::move(p.fn));
  }
}

void ParallelEngine::run() {
  if (domains() == 1 && threads_ == 1) {
    // Serial inline path: byte-for-byte the plain Engine, no quantum loop,
    // no barrier, no pool — zero overhead over PR 1 (perf gate).
    engines_[0]->run();
    return;
  }
  start_pool();
  std::fill(domain_errors_.begin(), domain_errors_.end(), nullptr);
  running_ = true;
  try {
    for (;;) {
      const Time next = next_event_time();
      if (next == kNever) break;
      // The quantum containing the earliest pending event; events landing
      // exactly on a quantum edge kΔ belong to [kΔ, (k+1)Δ) — the horizon
      // is exclusive, matching run_until(). A single domain has no
      // cross-domain latency bound, so it runs in one unbounded quantum.
      horizon_ = domains() == 1
                     ? kNever
                     : (next / cfg_.quantum_ns + 1) * cfg_.quantum_ns;
      run_quantum_phase();
      ++quanta_;
      for (unsigned d = 0; d < domains(); ++d) {
        if (domain_errors_[d]) {
          std::exception_ptr ex = domain_errors_[d];
          domain_errors_[d] = nullptr;
          std::rethrow_exception(ex);
        }
      }
      merge_channels();
    }
    running_ = false;
    // End-of-run checks in domain order (deterministic failure order).
    for (auto& eng : engines_) eng->finish_run();
  } catch (...) {
    running_ = false;
    throw;
  }
}

}  // namespace ksr::sim
