file(REMOVE_RECURSE
  "libksr_nas.a"
)
