file(REMOVE_RECURSE
  "CMakeFiles/barrier_playground.dir/barrier_playground.cpp.o"
  "CMakeFiles/barrier_playground.dir/barrier_playground.cpp.o.d"
  "barrier_playground"
  "barrier_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/barrier_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
