#pragma once

#include <memory>

#include "ksr/machine/bus_machine.hpp"
#include "ksr/machine/butterfly_machine.hpp"
#include "ksr/machine/ksr_machine.hpp"

namespace ksr::machine {

/// Build the machine matching `cfg.kind`.
[[nodiscard]] inline std::unique_ptr<Machine> make_machine(
    const MachineConfig& cfg) {
  switch (cfg.kind) {
    case MachineKind::kKsr1:
    case MachineKind::kKsr2:
      return std::make_unique<KsrMachine>(cfg);
    case MachineKind::kSymmetry:
      return std::make_unique<BusMachine>(cfg);
    case MachineKind::kButterfly:
      return std::make_unique<ButterflyMachine>(cfg);
  }
  return nullptr;
}

}  // namespace ksr::machine
