# Empty dependencies file for bench_fig8_speedup.
# This may be replaced when dependencies are built.
