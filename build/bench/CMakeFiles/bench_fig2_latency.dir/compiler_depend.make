# Empty compiler generated dependencies file for bench_fig2_latency.
# This may be replaced when dependencies are built.
