#pragma once

#include <cstddef>
#include <utility>
#include <vector>

// d-ary min-heap for the engine's event queue.
//
// Replaces std::priority_queue for two reasons. First, priority_queue::top()
// returns a const reference, forcing a const_cast to move the event out; the
// heap here has pop_top() returning the element by value. Second, a 4-ary
// heap is measurably faster than a binary heap for this workload: the tree
// is half as deep, sift-down touches one contiguous cache line of children
// per level, and events (time + seq + inline callback) are large enough that
// fewer moves dominate the extra comparisons.
//
// `Earlier(a, b)` returns true when `a` must be dispatched before `b`; with
// the engine's (time, seq) ordering the heap is only stable in the sense the
// engine needs — strict total order, no equal keys.
namespace ksr::sim {

template <typename T, typename Earlier, unsigned Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// The element that pop_top() would return. Precondition: !empty().
  [[nodiscard]] const T& top() const noexcept { return heap_.front(); }

  void push(T v) {
    heap_.push_back(std::move(v));
    sift_up(heap_.size() - 1);
  }

  /// Remove and return the minimum element (by value — no const_cast games).
  T pop_top() {
    T out = std::move(heap_.front());
    const std::size_t n = heap_.size() - 1;
    if (n == 0) {
      heap_.pop_back();
      return out;
    }
    T tail = std::move(heap_[n]);
    heap_.pop_back();
    // Sift the former tail down from the root hole.
    std::size_t hole = 0;
    for (;;) {
      const std::size_t first = hole * Arity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + Arity < n ? first + Arity : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier_(heap_[c], heap_[best])) best = c;
      }
      if (!earlier_(heap_[best], tail)) break;
      heap_[hole] = std::move(heap_[best]);
      hole = best;
    }
    heap_[hole] = std::move(tail);
    return out;
  }

  void clear() noexcept { heap_.clear(); }

  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  void sift_up(std::size_t i) {
    if (i == 0) return;
    T v = std::move(heap_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!earlier_(v, heap_[parent])) break;
      heap_[i] = std::move(heap_[parent]);
      i = parent;
    }
    heap_[i] = std::move(v);
  }

  std::vector<T> heap_;
  [[no_unique_address]] Earlier earlier_;
};

// Two-lane priority queue tuned for discrete-event scheduling.
//
// Most events a simulator schedules arrive in nondecreasing (time, seq)
// order — each dispatched event schedules things at or after `now`, and the
// tie-breaking sequence number always grows. A heap pays full-depth
// sift-downs for exactly that friendly pattern (the tail it re-sifts from
// the root is usually the maximum). So pushes that are >= the newest element
// of the sorted lane are appended there in O(1) and popped from its front in
// O(1); only out-of-order pushes fall back to the d-ary heap. pop_top()
// merges the two lanes by `Earlier`, so the dispatch order is exactly the
// total (time, seq) order a single heap would produce — bit-identical runs.
template <typename T, typename Earlier, unsigned Arity = 4>
class EventQueue {
 public:
  [[nodiscard]] bool empty() const noexcept {
    return run_head_ == run_.size() && heap_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return (run_.size() - run_head_) + heap_.size();
  }

  void push(T v) {
    if (run_head_ == run_.size()) {
      run_.clear();
      run_head_ = 0;
      run_.push_back(std::move(v));
    } else if (!earlier_(v, run_.back())) {
      run_.push_back(std::move(v));
    } else {
      heap_.push(std::move(v));
    }
  }

  /// The element pop_top() would return. Precondition: !empty().
  [[nodiscard]] const T& top() const noexcept {
    if (run_head_ == run_.size()) return heap_.top();
    if (heap_.empty()) return run_[run_head_];
    const T& r = run_[run_head_];
    return earlier_(heap_.top(), r) ? heap_.top() : r;
  }

  /// Remove and return the earliest element across both lanes.
  T pop_top() {
    if (run_head_ == run_.size()) return heap_.pop_top();
    if (!heap_.empty() && earlier_(heap_.top(), run_[run_head_])) {
      return heap_.pop_top();
    }
    T out = std::move(run_[run_head_++]);
    // Reclaim the dead prefix once it dominates the lane (trivial memmove).
    if (run_head_ >= 4096 && run_head_ * 2 >= run_.size()) {
      run_.erase(run_.begin(),
                 run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
      run_head_ = 0;
    }
    return out;
  }

  void clear() noexcept {
    heap_.clear();
    run_.clear();
    run_head_ = 0;
  }

  void reserve(std::size_t n) {
    heap_.reserve(n);
    run_.reserve(n);
  }

 private:
  DaryHeap<T, Earlier, Arity> heap_;
  std::vector<T> run_;        // sorted lane: monotone appends, popped in front
  std::size_t run_head_ = 0;  // first live element of run_
  [[no_unique_address]] Earlier earlier_;
};

}  // namespace ksr::sim
