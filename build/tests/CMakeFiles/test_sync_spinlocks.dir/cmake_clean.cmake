file(REMOVE_RECURSE
  "CMakeFiles/test_sync_spinlocks.dir/test_sync_spinlocks.cpp.o"
  "CMakeFiles/test_sync_spinlocks.dir/test_sync_spinlocks.cpp.o.d"
  "test_sync_spinlocks"
  "test_sync_spinlocks.pdb"
  "test_sync_spinlocks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sync_spinlocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
