#pragma once

#include <memory>

#include "ksr/machine/coherent_machine.hpp"
#include "ksr/net/bus.hpp"

// The Sequent-Symmetry-like machine of §3.2.3: the same cache-coherent cell
// model as the KSR, but every coherence transaction serializes on a single
// bus. With all communication serialized, parallel-communication-path
// algorithms (dissemination/tournament/MCS) lose their advantage and the
// naive counter barrier competes — the paper's qualitative claim.
namespace ksr::machine {

class BusMachine final : public CoherentMachine {
 public:
  explicit BusMachine(const MachineConfig& cfg)
      : CoherentMachine(cfg),
        bus_(std::make_unique<net::Bus>(
            engine_, net::Bus::Config{cfg.bus_transaction_ns})) {}

  [[nodiscard]] net::Bus& bus() noexcept { return *bus_; }

 protected:
  void transport(unsigned cell, mem::SubPageId sp, unsigned target_leaf,
                 std::function<void(sim::Duration)> done) override {
    (void)cell;
    (void)sp;
    (void)target_leaf;
    bus_->transact(std::move(done));
  }

  [[nodiscard]] sim::Duration transaction_overhead_ns(
      Acquire kind, bool crossed_leaf) const override {
    (void)crossed_leaf;
    sim::Duration t = cfg_.bus_overhead_ns;
    if (kind != Acquire::kShared) t += cfg_.bus_overhead_ns / 2;
    return t;
  }

 private:
  std::unique_ptr<net::Bus> bus_;
};

}  // namespace ksr::machine
