# Empty compiler generated dependencies file for test_sync_locks.
# This may be replaced when dependencies are built.
