
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sim_throughput.cpp" "bench/CMakeFiles/bench_sim_throughput.dir/bench_sim_throughput.cpp.o" "gcc" "bench/CMakeFiles/bench_sim_throughput.dir/bench_sim_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ksr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ksr_net.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/ksr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/sync/CMakeFiles/ksr_sync.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
