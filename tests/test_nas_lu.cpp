// LU (SSOR) application correctness: the pipelined Gauss-Seidel wavefronts
// must produce identical values for every processor count (dependencies
// determine the numeric order, not the partition), and the pipeline must
// actually overlap (scaling sanity).
#include <gtest/gtest.h>

#include <cmath>

#include "ksr/machine/ksr_machine.hpp"
#include "ksr/nas/lu.hpp"

namespace ksr::nas {
namespace {

using machine::KsrMachine;
using machine::MachineConfig;

TEST(Lu, ChecksumInvariantAcrossProcsAndPoststore) {
  LuConfig cfg;
  cfg.n = 8;
  cfg.iterations = 2;
  double expect = 0;
  {
    KsrMachine m(MachineConfig::ksr1(1).scaled_by(16));
    expect = run_lu(m, cfg).checksum;
  }
  EXPECT_TRUE(std::isfinite(expect));
  EXPECT_NE(expect, 0.0);
  for (unsigned p : {2u, 3u, 4u, 8u}) {
    for (bool post : {true, false}) {
      LuConfig c = cfg;
      c.use_poststore = post;
      KsrMachine m(MachineConfig::ksr1(p).scaled_by(16));
      EXPECT_NEAR(run_lu(m, c).checksum, expect, 1e-9)
          << "p=" << p << " poststore=" << post;
    }
  }
}

TEST(Lu, PipelineOverlapsAcrossSlabs) {
  LuConfig cfg;
  cfg.n = 12;
  cfg.iterations = 1;
  auto t_at = [&](unsigned p) {
    KsrMachine m(MachineConfig::ksr1(p).scaled_by(16));
    return run_lu(m, cfg).seconds_per_iteration;
  };
  const double t1 = t_at(1);
  const double t4 = t_at(4);
  // A non-pipelined (serialized) implementation would show ~no speedup.
  EXPECT_GT(t1 / t4, 2.0);
}

TEST(Lu, PoststoreSpeedsUpThePipelineHandoff) {
  // The pipeline flags are single-reader: poststore pushes each flag update
  // into the waiting neighbour's placeholder, cutting a fetch per hand-off.
  LuConfig cfg;
  cfg.n = 12;
  cfg.iterations = 1;
  auto t_with = [&](bool post) {
    LuConfig c = cfg;
    c.use_poststore = post;
    KsrMachine m(MachineConfig::ksr1(6).scaled_by(16));
    return run_lu(m, c).seconds_per_iteration;
  };
  EXPECT_LE(t_with(true), t_with(false) * 1.02);
}

}  // namespace
}  // namespace ksr::nas
